#include "core/multi_gpu.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace stm {

MultiGpuResult stmatch_match_multi_gpu(const Graph& g, const MatchingPlan& plan,
                                       std::size_t num_devices,
                                       const EngineConfig& cfg) {
  STM_CHECK(num_devices >= 1);
  MultiGpuResult result;
  const VertexId n = g.num_vertices();
  for (std::size_t d = 0; d < num_devices; ++d) {
    // Interleaved division of V: balances the degree skew of real graphs
    // across devices (device d takes vertices d, d+D, d+2D, ...).
    EngineConfig device_cfg = cfg;
    device_cfg.v_begin = static_cast<VertexId>(d);
    device_cfg.v_end = n;
    device_cfg.v_stride = static_cast<VertexId>(num_devices);
    MatchResult r = stmatch_match(g, plan, device_cfg);
    result.count += r.count;
    result.sim_ms = std::max(result.sim_ms, r.stats.sim_ms);
    result.per_device.push_back(std::move(r));
  }
  return result;
}

}  // namespace stm
