#include "core/multi_gpu.hpp"

#include "dist/partition.hpp"
#include "dist/replicated.hpp"
#include "util/check.hpp"

namespace stm {

MultiGpuResult stmatch_match_multi_gpu(const Graph& g, const MatchingPlan& plan,
                                       std::size_t num_devices,
                                       const EngineConfig& cfg) {
  STM_CHECK(num_devices >= 1);
  // The paper's interleaved division of V (device d takes d, d+D, d+2D, ...,
  // balancing the degree skew of real graphs) expressed as an ownership-only
  // partition; the slice/retry loop lives in dist::run_replicated so the
  // multi-GPU path and the sharded subsystem share one recovery story.
  dist::PartitionConfig pcfg;
  pcfg.num_shards = static_cast<std::uint32_t>(num_devices);
  pcfg.strategy = dist::PartitionStrategy::kInterleaved;
  pcfg.materialize = false;
  return dist::run_replicated(g, plan, dist::partition_graph(g, pcfg), cfg);
}

}  // namespace stm
