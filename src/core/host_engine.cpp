#include "core/host_engine.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "core/recursive.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace stm {

HostMatchResult host_match(const Graph& g, const MatchingPlan& plan,
                           const HostEngineConfig& cfg) {
  STM_CHECK(cfg.chunk_size >= 1);
  std::size_t threads = cfg.num_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const VertexId n = g.num_vertices();
  std::atomic<VertexId> cursor{0};
  std::vector<std::uint64_t> counts(threads, 0);
  std::vector<RecursiveCounters> counters(threads);

  Timer timer;
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Dynamic chunk claiming is the host-side analogue of the warp-level
        // chunk grabbing in the SIMT engine.
        for (;;) {
          const VertexId begin =
              cursor.fetch_add(cfg.chunk_size, std::memory_order_relaxed);
          if (begin >= n) break;
          const VertexId end = std::min<VertexId>(n, begin + cfg.chunk_size);
          counts[t] +=
              recursive_count_range(g, plan, begin, end, &counters[t]);
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  HostMatchResult result;
  result.wall_ms = timer.elapsed_ms();
  for (std::size_t t = 0; t < threads; ++t) {
    result.count += counts[t];
    result.scalar_ops += counters[t].scalar_ops;
  }
  return result;
}

}  // namespace stm
