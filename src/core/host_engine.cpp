#include "core/host_engine.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/recursive.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace stm {

namespace {

/// A chunk whose task failed: its partial count was discarded, so re-running
/// it from scratch keeps the total exact. `attempts` counts failures of this
/// unit; decisions are keyed by (begin, attempts), so a retry can succeed.
struct RetryChunk {
  VertexId begin = 0;
  VertexId end = 0;
  std::uint32_t attempts = 0;
};

}  // namespace

HostMatchResult host_match(GraphView g, const MatchingPlan& plan,
                           const HostEngineConfig& cfg,
                           const CancelToken* cancel, EmbeddingSink* sink) {
  STM_CHECK(cfg.chunk_size >= 1);
  std::optional<FaultInjector> injector;
  if (cfg.fault.enabled()) {
    STM_CHECK(cfg.fault.max_unit_attempts >= 1);
    injector.emplace(cfg.fault);
    if (injector->should_fail(FaultSite::kEngineThrow, 0)) {
      throw FaultInjectedError("injected fault: host engine call failed");
    }
  }
  std::size_t threads = cfg.num_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const VertexId n = g.num_vertices();
  std::atomic<VertexId> cursor{cfg.v_begin};
  // Emission is disabled for the rest of the run once the sink reports the
  // stream aborted/failed; counting continues unaffected.
  std::atomic<bool> emit_stop{false};
  if (sink != nullptr) {
    const std::uint64_t num_buckets =
        cfg.v_begin >= n
            ? 0
            : (static_cast<std::uint64_t>(n - cfg.v_begin) + cfg.chunk_size -
               1) /
                  cfg.chunk_size;
    sink->begin(num_buckets);
  }
  std::atomic<bool> interrupted{false};
  std::atomic<bool> budget_exhausted{false};
  std::atomic<std::size_t> active_chunks{0};
  std::atomic<std::uint64_t> units_recovered{0};
  std::vector<std::uint64_t> counts(threads, 0);
  std::vector<RecursiveCounters> counters(threads);

  // Failed chunks waiting for re-execution. Only touched on the chaos path;
  // the fault-free fast path never takes the lock.
  std::mutex retry_mu;
  std::deque<RetryChunk> retry;

  // A worker that throws (e.g. a fail-closed storage decode: an exhausted
  // spill-page retry budget surfaces as check_error from neighbors()) must
  // not take the process down. The first exception is captured, every other
  // worker is stopped, and the caller's thread rethrows after the join — so
  // the service's engine-call boundary sees it like any single-threaded
  // engine throw.
  std::mutex error_mu;
  std::exception_ptr first_error;

  Timer timer;
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        try {
        // Dynamic chunk claiming is the host-side analogue of the warp-level
        // chunk grabbing in the SIMT engine.
        CancelPoller poller(cancel);
        // Completed buckets not yet accepted by the sink. A worker never
        // parks on backpressure while claimable work may exist (a blocked
        // worker could be the only one able to run the retry chunk that
        // holds the release head); it blocking-flushes only on exit, in
        // ascending bucket order so the head-exemption guarantees progress.
        std::vector<std::pair<std::uint64_t, std::vector<Embedding>>> pending;
        auto flush_pending = [&](bool blocking) {
          if (pending.empty()) return;
          if (emit_stop.load(std::memory_order_relaxed)) {
            pending.clear();
            return;
          }
          std::sort(pending.begin(), pending.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          std::size_t done = 0;
          for (; done < pending.size(); ++done) {
            auto& [bucket, batch] = pending[done];
            if (blocking) {
              if (!sink->post(bucket, std::move(batch))) {
                emit_stop.store(true, std::memory_order_relaxed);
                pending.clear();
                return;
              }
            } else {
              const auto r = sink->try_post(bucket, batch);
              if (r == EmbeddingSink::TryPost::kWouldBlock) break;
              if (r == EmbeddingSink::TryPost::kAborted) {
                emit_stop.store(true, std::memory_order_relaxed);
                pending.clear();
                return;
              }
            }
          }
          pending.erase(pending.begin(),
                        pending.begin() + static_cast<std::ptrdiff_t>(done));
        };
        for (;;) {
          if (poller.fired_now()) {
            // Fired while this worker still had the loop to run: the count
            // is (potentially) partial. A token that only expires after the
            // cursor is exhausted and all recursions returned never trips
            // this, so complete runs stay kOk.
            interrupted.store(true, std::memory_order_relaxed);
            break;
          }
          if (budget_exhausted.load(std::memory_order_relaxed)) break;
          RetryChunk chunk;
          bool have = false;
          if (injector.has_value()) {
            std::lock_guard<std::mutex> lock(retry_mu);
            if (!retry.empty()) {
              chunk = retry.front();
              retry.pop_front();
              have = true;
            }
          }
          if (!have) {
            const VertexId begin =
                cursor.fetch_add(cfg.chunk_size, std::memory_order_relaxed);
            if (begin < n) {
              chunk = {begin, std::min<VertexId>(n, begin + cfg.chunk_size), 0};
              have = true;
            }
          }
          if (!have) {
            if (!injector.has_value()) break;
            // Chunks still in flight elsewhere may fail and feed the retry
            // queue; spin until everything is settled.
            if (active_chunks.load(std::memory_order_acquire) == 0) {
              std::lock_guard<std::mutex> lock(retry_mu);
              if (retry.empty()) break;
            }
            if (sink != nullptr) flush_pending(/*blocking=*/false);
            std::this_thread::yield();
            continue;
          }
          active_chunks.fetch_add(1, std::memory_order_acq_rel);
          const bool emitting =
              sink != nullptr && !emit_stop.load(std::memory_order_relaxed);
          std::vector<Embedding> staged;
          std::uint64_t found = 0;
          if (emitting) {
            const EmbeddingVisitor visit =
                [&staged](const std::vector<VertexId>& mapping) {
                  staged.push_back(mapping);
                  return true;
                };
            found = recursive_enumerate_range(g, plan, chunk.begin, chunk.end,
                                              visit, &counters[t], cancel);
          } else {
            found = recursive_count_range(g, plan, chunk.begin, chunk.end,
                                          &counters[t], cancel);
          }
          if (injector.has_value() &&
              injector->should_fail(
                  FaultSite::kHostTask,
                  (static_cast<std::uint64_t>(chunk.begin) << 16) |
                      chunk.attempts)) {
            // The task died mid-chunk: its partial count (and any staged
            // embeddings) are discarded and the whole chunk re-enqueued, so
            // the final total and the stream both stay exact.
            const std::uint32_t attempts = chunk.attempts + 1;
            if (attempts >= cfg.fault.max_unit_attempts) {
              budget_exhausted.store(true, std::memory_order_relaxed);
            } else {
              std::lock_guard<std::mutex> lock(retry_mu);
              retry.push_back({chunk.begin, chunk.end, attempts});
            }
          } else {
            counts[t] += found;
            if (chunk.attempts > 0)
              units_recovered.fetch_add(1, std::memory_order_relaxed);
            // Post only chunks that enumerated to completion: a token that
            // fired mid-chunk leaves `staged` a prefix of the bucket, which
            // must not enter the stream (the drained prefix would no longer
            // be bucket-aligned and thus not reproducible).
            if (emitting && (cancel == nullptr || !cancel->expired())) {
              const std::uint64_t bucket =
                  (chunk.begin - cfg.v_begin) / cfg.chunk_size;
              pending.emplace_back(bucket, std::move(staged));
              flush_pending(/*blocking=*/false);
            }
          }
          active_chunks.fetch_sub(1, std::memory_order_acq_rel);
          if (cancel != nullptr) cancel->report_progress();
        }
        if (sink != nullptr) flush_pending(/*blocking=*/true);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          // Stop the other workers promptly (same fast-path flag the
          // attempt-budget exhaustion uses) and disable emission so their
          // exit flushes drop instead of blocking on a stream that can no
          // longer complete.
          budget_exhausted.store(true, std::memory_order_relaxed);
          emit_stop.store(true, std::memory_order_relaxed);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  HostMatchResult result;
  result.stats.engine_ms = timer.elapsed_ms();
  if (budget_exhausted.load(std::memory_order_relaxed)) {
    result.stats.status = QueryStatus::kInternalError;
  } else if (interrupted.load(std::memory_order_relaxed)) {
    result.stats.status = cancel->status();
  }
  for (std::size_t t = 0; t < threads; ++t) {
    result.count += counts[t];
    result.stats.scalar_ops += counters[t].scalar_ops;
    result.stats.sets_built += counters[t].sets_built;
  }
  if (injector.has_value()) {
    result.stats.faults_injected = injector->total_injected();
    result.stats.units_recovered =
        units_recovered.load(std::memory_order_relaxed);
  }
  return result;
}

}  // namespace stm
