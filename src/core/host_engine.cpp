#include "core/host_engine.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "core/recursive.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace stm {

HostMatchResult host_match(const Graph& g, const MatchingPlan& plan,
                           const HostEngineConfig& cfg,
                           const CancelToken* cancel) {
  STM_CHECK(cfg.chunk_size >= 1);
  std::size_t threads = cfg.num_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const VertexId n = g.num_vertices();
  std::atomic<VertexId> cursor{0};
  std::atomic<bool> interrupted{false};
  std::vector<std::uint64_t> counts(threads, 0);
  std::vector<RecursiveCounters> counters(threads);

  Timer timer;
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Dynamic chunk claiming is the host-side analogue of the warp-level
        // chunk grabbing in the SIMT engine.
        CancelPoller poller(cancel);
        for (;;) {
          if (poller.fired_now()) {
            // Fired while this worker still had the loop to run: the count
            // is (potentially) partial. A token that only expires after the
            // cursor is exhausted and all recursions returned never trips
            // this, so complete runs stay kOk.
            interrupted.store(true, std::memory_order_relaxed);
            break;
          }
          const VertexId begin =
              cursor.fetch_add(cfg.chunk_size, std::memory_order_relaxed);
          if (begin >= n) break;
          const VertexId end = std::min<VertexId>(n, begin + cfg.chunk_size);
          counts[t] += recursive_count_range(g, plan, begin, end,
                                             &counters[t], cancel);
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  HostMatchResult result;
  result.stats.engine_ms = timer.elapsed_ms();
  if (interrupted.load(std::memory_order_relaxed)) {
    result.stats.status = cancel->status();
  }
  for (std::size_t t = 0; t < threads; ++t) {
    result.count += counts[t];
    result.stats.scalar_ops += counters[t].scalar_ops;
    result.stats.sets_built += counters[t].sets_built;
  }
  return result;
}

}  // namespace stm
