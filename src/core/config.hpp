// STMatch engine configuration and result statistics.
#pragma once

#include <cstdint>

#include "core/fault.hpp"
#include "core/query_stats.hpp"
#include "graph/types.hpp"
#include "simt/cost_model.hpp"
#include "simt/device.hpp"

namespace stm {

/// Feature flags and tuning parameters of the STMatch engine
/// (paper §VIII-A defaults: StopLevel 2, DetectLevel 1, UNROLL 8).
struct EngineConfig {
  DeviceConfig device;
  CostModel cost;

  /// Loop-unrolling factor (candidate choices expanded per descend).
  std::uint32_t unroll = 8;
  /// Enable intra-block (shared memory) work stealing.
  bool local_steal = true;
  /// Enable cross-block (global memory) work stealing.
  bool global_steal = true;
  /// Steal split points are restricted to levels < stop_level.
  std::uint32_t stop_level = 2;
  /// A busy warp offers work to idle blocks only while at level < detect_level.
  std::uint32_t detect_level = 1;
  /// Level-0 vertices grabbed per chunk request.
  std::uint32_t chunk_size = 8;
  /// Restrict the outermost loop to data vertices [v_begin, v_end); v_end = 0
  /// means "to the end". Used for multi-device partitioning (paper Fig. 11).
  VertexId v_begin = 0;
  VertexId v_end = 0;
  /// Step between outer-loop vertices: device d of D takes v_begin = d,
  /// v_stride = D for a skew-balanced interleaved division of V.
  VertexId v_stride = 1;
  /// When != kNoVertex, level 1 of the matching order is pinned to this data
  /// vertex (combined with v_begin/v_end = u/u+1 this anchors enumeration on
  /// a single data edge, the seeding mode of the incremental matcher).
  VertexId pin_v1 = kNoVertex;
  /// Deterministic fault-injection schedule (all sites off by default).
  /// Sites interpreted here: kWarpAbort, kSlabAlloc, kStealLoss,
  /// kEngineThrow; multi-device runs additionally honor kDeviceFail.
  FaultConfig fault;
};

/// Execution statistics of one engine run.
struct EngineStats {
  /// Simulated makespan (max warp finish time), in cycles and milliseconds.
  std::uint64_t makespan_cycles = 0;
  double sim_ms = 0.0;
  /// Sum of busy cycles over all warps.
  std::uint64_t busy_cycles = 0;
  /// busy / (makespan * warps): the occupancy the paper profiles in Fig. 12.
  double occupancy = 0.0;
  /// Aggregated warp set-operation counters; utilization() is the paper's
  /// Fig. 13 thread-utilization metric.
  WarpOpCost set_ops;
  std::uint64_t chunks_grabbed = 0;
  std::uint64_t local_steals = 0;
  std::uint64_t global_steals = 0;
  /// Modeled global-memory footprint of the per-warp stacks (bytes).
  std::uint64_t stack_bytes = 0;
  /// Shared-memory bytes used per block.
  std::uint64_t shared_bytes_per_block = 0;
  /// Candidate-set materializations executed.
  std::uint64_t sets_built = 0;
  /// Chaos accounting: injected faults, recovery units re-adopted, and
  /// whether the run failed because a unit exhausted its retry budget.
  std::uint64_t faults_injected = 0;
  std::uint64_t units_recovered = 0;
  bool recovery_exhausted = false;

  /// The cross-engine view of these statistics (engine_ms is simulated
  /// time; scalar_ops counts busy lane slots of warp set operations).
  QueryStats to_query_stats() const {
    QueryStats q;
    q.engine_ms = sim_ms;
    q.scalar_ops = set_ops.busy_lane_slots;
    q.sets_built = sets_built;
    q.faults_injected = faults_injected;
    q.units_recovered = units_recovered;
    return q;
  }
};

/// Result of a matching run.
struct MatchResult {
  /// Match count; partial when query.status != kOk.
  std::uint64_t count = 0;
  EngineStats stats;
  /// Unified per-query statistics shared with the host engine and the
  /// service layer (status, engine_ms, scalar work).
  QueryStats query;
};

}  // namespace stm
