#include "core/engine.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <queue>

#include "core/fault.hpp"
#include "pattern/matching_order.hpp"
#include "setops/multi_set_op.hpp"
#include "util/check.hpp"

namespace stm {

namespace {

/// Work migrated by a steal: the frozen stack prefix plus the split
/// iteration range at the entry level (paper Fig. 5 divide-and-copy).
struct StackSnapshot {
  std::uint32_t entry_level = 0;
  std::array<VertexId, kMaxPatternSize> matched{};
  std::int64_t iter = 0;
  std::int64_t limit = 0;
  std::vector<VertexId> c0;  // when entry_level == 0
  /// (node id, value) pairs: the candidate set of entry_level and every
  /// carried intermediate set (paper §VII: "copy all the intermediate sets
  /// that are used by sets after target_level").
  std::vector<std::pair<std::int16_t, std::vector<VertexId>>> node_values;
  std::uint64_t elements = 0;  // copy-cost basis
};

/// A failed warp's entire stack frame, captured before the failing step
/// mutated it. Restoring it into an idle warp resumes the enumeration at
/// exactly the interrupted step: completed subtrees are not redone and the
/// dead warp's already-committed count is kept, so recovery is exact.
struct FullFrame {
  int level = 0;
  std::vector<VertexId> c0;
  std::vector<std::vector<std::vector<VertexId>>> values;
  std::array<std::int64_t, kMaxPatternSize> iter{};
  std::array<std::int64_t, kMaxPatternSize> limit{};
  std::array<std::int32_t, kMaxPatternSize> ucol{};
  std::array<std::int32_t, kMaxPatternSize> num_cols{};
  std::array<VertexId, kMaxPatternSize> matched{};
  std::array<std::vector<VertexId>, kMaxPatternSize> col_choice;
  std::array<std::vector<bool>, kMaxPatternSize> col_valid;
  std::uint64_t elements = 0;  // copy-cost basis
};

/// Work lost to an injected fault, queued for re-execution: either a full
/// frame (warp abort, slab-allocation failure) or a migrating steal snapshot
/// lost in transit. Carries the lineage's failure count; exceeding the
/// per-unit budget fails the whole run with kInternalError.
struct RecoveryUnit {
  std::uint32_t attempts = 0;
  std::optional<FullFrame> frame;
  std::optional<StackSnapshot> split;
};

struct WarpState {
  std::uint32_t id = 0;
  std::uint32_t block = 0;
  std::uint32_t lane_in_block = 0;

  std::uint64_t clock = 0;  // virtual time
  std::uint64_t busy = 0;
  std::uint64_t count = 0;
  bool done = false;
  bool idle = false;

  int level = -1;  // -1: needs work
  std::vector<VertexId> c0;
  /// values[node][column]: materialized set contents.
  std::vector<std::vector<std::vector<VertexId>>> values;
  std::array<std::int64_t, kMaxPatternSize> iter{};
  std::array<std::int64_t, kMaxPatternSize> limit{};
  std::array<std::int32_t, kMaxPatternSize> ucol{};
  std::array<std::int32_t, kMaxPatternSize> num_cols{};
  std::array<VertexId, kMaxPatternSize> matched{};
  /// col_choice[l][m] / col_valid[l][m]: the level-(l-1) choice behind
  /// column m of level l, and whether it passed the descend-time filters.
  std::array<std::vector<VertexId>, kMaxPatternSize> col_choice;
  std::array<std::vector<bool>, kMaxPatternSize> col_valid;

  WarpOpCost ops;
  std::uint64_t sets_built = 0;
  std::uint64_t local_steals = 0;
  std::uint64_t global_steals = 0;
  std::uint64_t chunks = 0;
  std::uint32_t push_throttle = 0;
  /// Active steps executed; key basis for fault-injection decisions.
  std::uint64_t steps = 0;
  /// Failures accumulated by the work lineage this warp is running (nonzero
  /// only after adopting a recovery unit).
  std::uint32_t unit_attempts = 0;
};

class StackEngine {
 public:
  StackEngine(GraphView g, const MatchingPlan& plan, const EngineConfig& cfg,
              const CancelToken* cancel = nullptr,
              EmbeddingSink* sink = nullptr)
      : g_(g), plan_(plan), cfg_(cfg), poller_(cancel), sink_(sink),
        k_(plan.size()) {
    cfg_.device.validate();
    STM_CHECK(cfg_.unroll >= 1 && cfg_.unroll <= kWarpWidth);
    STM_CHECK(cfg_.stop_level >= 1);
    STM_CHECK(cfg_.chunk_size >= 1);
    STM_CHECK_MSG(!plan_.pattern().is_labeled() || g_.is_labeled(),
                  "labeled pattern requires a labeled data graph");
    shared_per_warp_ = stmatch_shared_bytes_per_warp(plan_.num_nodes(),
                                                     cfg_.unroll, k_);
    STM_CHECK_MSG(
        shared_per_warp_ * cfg_.device.warps_per_block <=
            cfg_.device.shared_mem_bytes,
        "thread block exceeds shared memory: "
            << shared_per_warp_ * cfg_.device.warps_per_block << " > "
            << cfg_.device.shared_mem_bytes
            << " bytes (reduce unroll or warps_per_block)");
    STM_CHECK(cfg_.v_stride >= 1);
    const VertexId range_end =
        (cfg_.v_end == 0) ? g_.num_vertices()
                          : std::min<VertexId>(cfg_.v_end, g_.num_vertices());
    // The outer loop walks virtual indices i -> v_begin + i * v_stride.
    v_cursor_ = 0;
    v_end_ = (range_end > cfg_.v_begin)
                 ? (range_end - cfg_.v_begin + cfg_.v_stride - 1) /
                       cfg_.v_stride
                 : 0;
    if (cfg_.fault.enabled()) {
      STM_CHECK(cfg_.fault.max_unit_attempts >= 1);
      injector_.emplace(cfg_.fault);
    }
    build_carry_sets();
  }

  MatchResult run();

 private:
  using HeapEntry = std::pair<std::uint64_t, std::uint32_t>;  // clock, warp id

  // --- setup -------------------------------------------------------------
  void build_carry_sets() {
    // carry_[t]: nodes whose value must migrate with a steal at entry level
    // t — materialized at or before t and still referenced after t.
    carry_.resize(k_);
    const auto& nodes = plan_.nodes();
    for (std::size_t t = 0; t < k_; ++t) {
      std::vector<bool> needed(nodes.size(), false);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].dep >= 0 && nodes[i].mat_level > t)
          needed[static_cast<std::size_t>(nodes[i].dep)] = true;
      }
      // Candidate sets of levels >= t (including t itself: the split range
      // iterates it); the mat_level filter below keeps only those that are
      // already materialized at the split point.
      for (std::size_t l = std::max<std::size_t>(t, 1); l < k_; ++l)
        needed[static_cast<std::size_t>(plan_.candidate_node(l))] = true;
      for (std::size_t i = 0; i < nodes.size(); ++i)
        if (needed[i] && nodes[i].mat_level <= t)
          carry_[t].push_back(static_cast<std::int16_t>(i));
    }
  }

  void charge(WarpState& w, std::uint64_t cycles) {
    w.clock += cycles;
    w.busy += cycles;
  }

  const std::vector<VertexId>& cand_at(WarpState& w, std::size_t l) {
    if (l == 0) return w.c0;
    const auto node = static_cast<std::size_t>(plan_.candidate_node(l));
    // A candidate set shared across levels (code motion, e.g. star leaves)
    // lives in the unroll column of the level that materialized it.
    const auto col = static_cast<std::size_t>(
        w.ucol[plan_.nodes()[node].mat_level]);
    return w.values[node][col];
  }

  LabelFilter filter_for(std::uint64_t mask) const {
    if (!g_.is_labeled() || mask == ~0ULL) return LabelFilter{};
    return LabelFilter{g_.labels_data(), mask};
  }

  /// Injectivity + symmetry-order filters for choosing v_l (labels are
  /// already enforced by the candidate set's mask).
  bool choice_ok(const WarpState& w, std::size_t l, VertexId v) const {
    if (l == 1 && cfg_.pin_v1 != kNoVertex && v != cfg_.pin_v1) return false;
    for (std::size_t j = 0; j < l; ++j)
      if (w.matched[j] == v) return false;
    for (std::uint8_t smaller : plan_.constraints_at(l))
      if (w.matched[smaller] >= v) return false;
    return true;
  }

  // --- descend: materialize entry sets for the next level -----------------
  /// Expands choices iter[l]..iter[l]+U-1 of level l and materializes all
  /// set nodes of entry level l+1, one fused multi-set op per node
  /// (paper Fig. 7 line 9 + Fig. 8). Returns the number of choice slots
  /// consumed.
  std::int32_t materialize_entry(WarpState& w, std::size_t l) {
    const auto& cand = cand_at(w, l);
    const std::size_t entry = l + 1;
    const auto ncols = static_cast<std::int32_t>(
        std::min<std::int64_t>(cfg_.unroll, w.limit[l] - w.iter[l]));
    auto& choices = w.col_choice[entry];
    auto& valid = w.col_valid[entry];
    choices.assign(static_cast<std::size_t>(ncols), 0);
    valid.assign(static_cast<std::size_t>(ncols), false);
    for (std::int32_t m = 0; m < ncols; ++m) {
      const VertexId v = cand[static_cast<std::size_t>(w.iter[l] + m)];
      choices[static_cast<std::size_t>(m)] = v;
      valid[static_cast<std::size_t>(m)] = choice_ok(w, l, v);
    }

    const auto& nodes = plan_.nodes();
    for (std::int16_t id : plan_.nodes_at_entry(entry)) {
      const SetNode& node = nodes[static_cast<std::size_t>(id)];
      ++w.sets_built;
      auto& cols = w.values[static_cast<std::size_t>(id)];
      const LabelFilter filter = filter_for(node.label_mask);
      // Operand vertex per column: the fresh choice if the op references
      // v_l, otherwise an already-matched ancestor (same for all columns).
      auto operand = [&](std::int32_t m) -> VertexId {
        return node.op.vertex == l ? choices[static_cast<std::size_t>(m)]
                                   : w.matched[node.op.vertex];
      };
      if (node.dep < 0) {
        // Fused filtered copies of U neighbor lists.
        WarpOpCost copy_cost;
        for (std::int32_t m = 0; m < ncols; ++m) {
          auto& out = cols[static_cast<std::size_t>(m)];
          if (!valid[static_cast<std::size_t>(m)]) {
            out.clear();
            continue;
          }
          filtered_copy(g_.neighbors(operand(m)), filter, out, &copy_cost);
        }
        // Re-fuse wave accounting: back-to-back copies share warp waves.
        WarpOpCost fused;
        fused.busy_lane_slots = copy_cost.busy_lane_slots;
        fused.elements_written = copy_cost.elements_written;
        fused.waves = (copy_cost.busy_lane_slots + kWarpWidth - 1) / kWarpWidth;
        fused.probe_cycles = fused.waves;
        w.ops += fused;
        charge(w, cfg_.cost.set_op_cycles(fused));
      } else {
        const SetNode& dep = nodes[static_cast<std::size_t>(node.dep)];
        std::vector<SetOpTask> tasks;
        tasks.reserve(static_cast<std::size_t>(ncols));
        for (std::int32_t m = 0; m < ncols; ++m) {
          auto& out = cols[static_cast<std::size_t>(m)];
          if (!valid[static_cast<std::size_t>(m)]) {
            out.clear();
            continue;
          }
          // The dep's column: same unrolled column when materialized at this
          // entry, else the active column of its own level.
          const auto dep_col =
              (dep.mat_level == entry)
                  ? m
                  : w.ucol[dep.mat_level];
          const auto& source = w.values[static_cast<std::size_t>(node.dep)]
                                        [static_cast<std::size_t>(dep_col)];
          tasks.push_back(SetOpTask{source, g_.neighbors(operand(m)),
                                    node.op.kind, filter, &out});
        }
        WarpOpCost op_cost;
        combined_set_op(tasks, &op_cost);
        w.ops += op_cost;
        charge(w, cfg_.cost.set_op_cycles(op_cost));
      }
    }
    return ncols;
  }

  /// Descend into an interior level.
  void descend(WarpState& w, std::size_t l) {
    const std::size_t entry = l + 1;
    w.num_cols[entry] = materialize_entry(w, l);
    w.ucol[entry] = -1;
    w.level = static_cast<int>(entry);
    if (!next_column(w, entry)) {
      // All choices invalid: bounce straight back.
      w.iter[l] += w.num_cols[entry];
      w.level = static_cast<int>(l);
    }
  }

  /// Advance to the next valid column of `l`; updates matched[l-1] and the
  /// iteration window. Returns false when all columns are consumed.
  bool next_column(WarpState& w, std::size_t l) {
    while (++w.ucol[l] < w.num_cols[l]) {
      const auto m = static_cast<std::size_t>(w.ucol[l]);
      if (!w.col_valid[l][m]) continue;
      w.matched[l - 1] = w.col_choice[l][m];
      w.iter[l] = 0;
      w.limit[l] = static_cast<std::int64_t>(cand_at(w, l).size());
      return true;
    }
    return false;
  }

  /// Expand level k-2 and count matches in the fused last-level candidate
  /// sets (paper Fig. 3 line 15: subgraphs are output at the last level).
  void descend_and_count(WarpState& w, std::size_t l) {
    const std::size_t entry = l + 1;  // == k_ - 1
    const auto ncols = materialize_entry(w, l);
    const auto cand_node =
        static_cast<std::size_t>(plan_.candidate_node(entry));
    const auto cand_mat_level = plan_.nodes()[cand_node].mat_level;
    WarpOpCost scan;
    for (std::int32_t m = 0; m < ncols; ++m) {
      if (!w.col_valid[entry][static_cast<std::size_t>(m)]) continue;
      w.matched[l] = w.col_choice[entry][static_cast<std::size_t>(m)];
      const auto col = (cand_mat_level == entry)
                           ? static_cast<std::size_t>(m)
                           : static_cast<std::size_t>(w.ucol[cand_mat_level]);
      const auto& set = w.values[cand_node][col];
      for (VertexId v : set) {
        if (!choice_ok(w, entry, v)) continue;
        ++w.count;
        if (emit_active_) stage_embedding(w, v);
      }
      scan.busy_lane_slots += set.size();
    }
    scan.waves = (scan.busy_lane_slots + kWarpWidth - 1) / kWarpWidth;
    scan.probe_cycles = scan.waves;
    w.ops += scan;
    charge(w, cfg_.cost.set_op_cycles(scan));
    w.iter[l] += ncols;
    w.num_cols[entry] = 0;
  }

  // --- embedding emission --------------------------------------------------
  std::uint64_t idx_of(VertexId v) const {
    return (v - cfg_.v_begin) / cfg_.v_stride;
  }

  /// Stages a matched embedding into its outer-index bucket. `w.matched[0..
  /// k-2]` holds the prefix; `v` is the last-level choice.
  void stage_embedding(const WarpState& w, VertexId v) {
    Embedding e(k_);
    for (std::size_t i = 0; i + 1 < k_; ++i) e[i] = w.matched[i];
    e[k_ - 1] = v;
    emit_buckets_[idx_of(w.matched[0])].push_back(std::move(e));
  }

  /// Smallest outer virtual index a live unit can still emit into, derived
  /// from the unit's frozen level-0 window: while any deeper work is in
  /// flight, iter[0] still points at the window start, so c0[iter[0]] lower-
  /// bounds every future matched[0] of the unit. Units carrying no level-0
  /// range (steal entry >= 1, anchored frames) are pinned to matched[0].
  template <typename Unit>
  std::uint64_t unit_min_index(const Unit& u) const {
    if (u.level < 0) return ~std::uint64_t{0};
    if (u.iter[0] < u.limit[0] && !u.c0.empty())
      return idx_of(u.c0[static_cast<std::size_t>(u.iter[0])]);
    if (u.level >= 1) return idx_of(u.matched[0]);
    return ~std::uint64_t{0};
  }

  std::uint64_t snapshot_min_index(const StackSnapshot& s) const {
    if (s.entry_level == 0)
      return idx_of(s.c0[static_cast<std::size_t>(s.iter)]);
    return idx_of(s.matched[0]);
  }

  /// Conservative low-watermark: every bucket below it is complete (no
  /// unclaimed range, running warp, parked snapshot, or recovery unit can
  /// still reach it), so it is safe to post.
  std::uint64_t emit_watermark() const {
    std::uint64_t wm = (v_cursor_ < v_end_) ? v_cursor_ : v_end_;
    for (const auto& w : warps_)
      if (!w.done) wm = std::min(wm, unit_min_index(w));
    for (const auto& slot : slots_)
      if (slot.has_value()) wm = std::min(wm, snapshot_min_index(*slot));
    for (const auto& unit : recovery_) {
      if (unit.frame.has_value())
        wm = std::min(wm, unit_min_index(*unit.frame));
      else
        wm = std::min(wm, snapshot_min_index(*unit.split));
    }
    return wm;
  }

  /// Posts every newly complete bucket, sorted into DFS order (lexicographic
  /// over plan-position tuples — within one outer vertex, staging order
  /// depends on steal interleaving, the sort canonicalizes it).
  void emit_flush() {
    if (!emit_active_) return;
    const std::uint64_t wm = emit_watermark();
    while (emit_next_flush_ < wm) {
      auto& bucket = emit_buckets_[emit_next_flush_];
      std::sort(bucket.begin(), bucket.end());
      if (!sink_->post(emit_next_flush_, std::move(bucket))) {
        emit_active_ = false;  // stream aborted; keep counting
        emit_buckets_.clear();
        emit_buckets_.shrink_to_fit();
        return;
      }
      bucket = {};
      ++emit_next_flush_;
    }
  }

  // --- work acquisition ----------------------------------------------------
  bool grab_chunk(WarpState& w) {
    if (v_cursor_ >= v_end_) return false;
    const VertexId begin = v_cursor_;
    const VertexId end = std::min<VertexId>(v_end_, begin + cfg_.chunk_size);
    v_cursor_ = end;
    w.c0.clear();
    const LabelFilter filter = filter_for(plan_.exact_mask(0));
    for (VertexId i = begin; i < end; ++i) {
      const VertexId v = cfg_.v_begin + i * cfg_.v_stride;
      if (filter.keep(v)) w.c0.push_back(v);
    }
    w.iter[0] = 0;
    w.limit[0] = static_cast<std::int64_t>(w.c0.size());
    w.level = 0;
    ++w.chunks;
    w.unit_attempts = 0;  // fresh work, fresh failure budget
    charge(w, cfg_.cost.global_copy_cycles(end - begin));
    return true;
  }

  /// Remaining (not in-flight) iterations of level t of a warp.
  std::int64_t stealable_at(const WarpState& w, std::size_t t) const {
    if (w.level < 0 || t > static_cast<std::size_t>(w.level)) return 0;
    const std::int64_t inflight =
        (t < static_cast<std::size_t>(w.level)) ? w.num_cols[t + 1] : 0;
    return std::max<std::int64_t>(0, w.limit[t] - (w.iter[t] + inflight));
  }

  /// Shallowest splittable level of a warp, or -1.
  int split_level(const WarpState& w) const {
    const auto max_t = std::min<std::size_t>(cfg_.stop_level, k_ - 1);
    for (std::size_t t = 0; t < max_t; ++t)
      if (stealable_at(w, t) >= 2) return static_cast<int>(t);
    return -1;
  }

  /// Splits `victim` at level t and builds the migrating snapshot.
  StackSnapshot split_stack(WarpState& victim, std::size_t t) {
    StackSnapshot snap;
    snap.entry_level = static_cast<std::uint32_t>(t);
    snap.matched = victim.matched;
    const std::int64_t inflight =
        (t < static_cast<std::size_t>(victim.level)) ? victim.num_cols[t + 1]
                                                     : 0;
    const std::int64_t start = victim.iter[t] + inflight;
    const std::int64_t rem = victim.limit[t] - start;
    STM_CHECK(rem >= 2);
    const std::int64_t mid = start + (rem + 1) / 2;
    snap.iter = mid;
    snap.limit = victim.limit[t];
    victim.limit[t] = mid;
    if (t == 0) {
      snap.c0 = victim.c0;
      snap.elements += snap.c0.size();
    }
    for (std::int16_t id : carry_[t]) {
      const auto& node = plan_.nodes()[static_cast<std::size_t>(id)];
      const auto col = static_cast<std::size_t>(victim.ucol[node.mat_level]);
      const auto& value = victim.values[static_cast<std::size_t>(id)][col];
      snap.elements += value.size();
      snap.node_values.emplace_back(id, value);
    }
    return snap;
  }

  /// Installs a snapshot into an idle warp's stack.
  void adopt(WarpState& w, const StackSnapshot& snap) {
    const auto t = static_cast<std::size_t>(snap.entry_level);
    w.matched = snap.matched;
    for (std::size_t l = 0; l < k_; ++l) {
      w.iter[l] = 0;
      w.limit[l] = 0;
      w.ucol[l] = 0;
      w.num_cols[l] = 1;
    }
    for (const auto& [id, value] : snap.node_values)
      w.values[static_cast<std::size_t>(id)][0] = value;
    if (t == 0) w.c0 = snap.c0;
    w.iter[t] = snap.iter;
    w.limit[t] = snap.limit;
    w.level = static_cast<int>(t);
    w.idle = false;
  }

  // --- fault injection and recovery ---------------------------------------
  FullFrame capture_frame(const WarpState& w) const {
    FullFrame f;
    f.level = w.level;
    f.c0 = w.c0;
    f.values = w.values;
    f.iter = w.iter;
    f.limit = w.limit;
    f.ucol = w.ucol;
    f.num_cols = w.num_cols;
    f.matched = w.matched;
    f.col_choice = w.col_choice;
    f.col_valid = w.col_valid;
    f.elements += f.c0.size();
    for (const auto& node : f.values)
      for (const auto& col : node) f.elements += col.size();
    return f;
  }

  void restore_frame(WarpState& w, const FullFrame& f) {
    w.level = f.level;
    w.c0 = f.c0;
    w.values = f.values;
    w.iter = f.iter;
    w.limit = f.limit;
    w.ucol = f.ucol;
    w.num_cols = f.num_cols;
    w.matched = f.matched;
    w.col_choice = f.col_choice;
    w.col_valid = f.col_valid;
    w.idle = false;
  }

  /// An injected fault killed this warp's current step: its frame (captured
  /// before the step mutated anything) is re-enqueued for another warp, and
  /// the warp itself restarts with a clean stack. The committed count stays
  /// with the warp, so nothing is double-counted or lost.
  void abort_warp(WarpState& w) {
    ++stats_.faults_injected;
    const std::uint32_t attempts = w.unit_attempts + 1;
    if (attempts >= cfg_.fault.max_unit_attempts) {
      recovery_exhausted_ = true;
      return;
    }
    RecoveryUnit unit;
    unit.attempts = attempts;
    unit.frame.emplace(capture_frame(w));
    recovery_.push_back(std::move(unit));
    w.level = -1;
    w.unit_attempts = 0;
    charge(w, cfg_.cost.idle_poll);  // warp-restart penalty
  }

  /// A migrating steal snapshot was lost in transit: park it in the recovery
  /// queue (the recovery path itself is modeled as reliable) instead of
  /// handing it to the thief. Exactness holds because the victim already
  /// relinquished the split range.
  void lose_snapshot(StackSnapshot snap) {
    ++stats_.faults_injected;
    RecoveryUnit unit;
    unit.attempts = 1;
    unit.split.emplace(std::move(snap));
    recovery_.push_back(std::move(unit));
  }

  bool try_adopt_recovery(WarpState& w) {
    if (recovery_.empty()) return false;
    RecoveryUnit unit = std::move(recovery_.front());
    recovery_.pop_front();
    std::uint64_t elements = 0;
    if (unit.frame.has_value()) {
      restore_frame(w, *unit.frame);
      elements = unit.frame->elements;
    } else {
      adopt(w, *unit.split);
      elements = unit.split->elements;
    }
    w.unit_attempts = unit.attempts;
    ++stats_.units_recovered;
    charge(w, cfg_.cost.global_copy_cycles(elements));
    return true;
  }

  /// Pull-based steal within the thread block (paper §V-A).
  bool try_local_steal(WarpState& thief) {
    charge(thief, cfg_.cost.steal_scan);
    WarpState* best = nullptr;
    std::int64_t best_score = 0;
    for (std::uint32_t lane = 0; lane < cfg_.device.warps_per_block; ++lane) {
      WarpState& other = warps_[thief.block * cfg_.device.warps_per_block +
                                lane];
      if (other.id == thief.id || other.done || other.idle) continue;
      const int t = split_level(other);
      if (t < 0) continue;
      // Most remaining work, weighted toward shallow levels.
      std::int64_t score = 0;
      for (std::size_t lvl = 0; lvl < cfg_.stop_level && lvl < k_ - 1; ++lvl)
        score = score * 1024 + stealable_at(other, lvl);
      if (best == nullptr || score > best_score ||
          (score == best_score && other.id < best->id)) {
        best = &other;
        best_score = score;
      }
    }
    if (best == nullptr) return false;
    const int t = split_level(*best);
    StackSnapshot snap = split_stack(*best, static_cast<std::size_t>(t));
    if (injector_.has_value() &&
        injector_->should_fail(FaultSite::kStealLoss, steal_seq_++)) {
      lose_snapshot(std::move(snap));
      charge(thief, cfg_.cost.steal_scan);
      return false;
    }
    adopt(thief, snap);
    thief.unit_attempts = 0;
    const auto copy = cfg_.cost.shared_copy_cycles(snap.elements);
    // The thief cannot start before the victim's stack reached this state.
    thief.clock = std::max(thief.clock, best->clock);
    charge(thief, copy + cfg_.cost.steal_scan);
    charge(*best, cfg_.cost.steal_scan / 2);  // victim-side interference
    ++thief.local_steals;
    ++stats_.local_steals;
    return true;
  }

  /// Push-based offer to a fully idle block (paper §V-B, Fig. 6).
  void maybe_push_global(WarpState& w) {
    if (!cfg_.global_steal) return;
    if (w.level < 0 ||
        static_cast<std::size_t>(w.level) >= cfg_.detect_level)
      return;
    if (++w.push_throttle % 4 != 0) return;  // periodic check
    const int t = split_level(w);
    if (t < 0) return;
    charge(w, cfg_.cost.idle_check);
    for (std::uint32_t b = 0; b < cfg_.device.num_blocks; ++b) {
      if (b == w.block || slots_[b].has_value()) continue;
      if (idle_count_[b] != cfg_.device.warps_per_block) continue;
      StackSnapshot snap = split_stack(w, static_cast<std::size_t>(t));
      charge(w, cfg_.cost.global_copy_cycles(snap.elements));
      if (injector_.has_value() &&
          injector_->should_fail(FaultSite::kStealLoss, steal_seq_++)) {
        lose_snapshot(std::move(snap));
        return;
      }
      slot_clock_[b] = w.clock;
      slots_[b] = std::move(snap);
      ++w.global_steals;
      ++stats_.global_steals;
      return;
    }
  }

  void acquire_work(WarpState& w) {
    // Lost work first: units in the recovery queue block global termination,
    // so draining them before grabbing fresh chunks bounds their latency.
    if (try_adopt_recovery(w)) return;
    if (grab_chunk(w)) return;
    if (cfg_.local_steal && try_local_steal(w)) return;
    // Go idle: mark the bitmap and spin (paper Fig. 6 steps 1-2).
    if (!w.idle) {
      w.idle = true;
      ++idle_count_[w.block];
    }
    w.clock += cfg_.cost.idle_poll;  // spinning is not useful work
  }

  void poll_idle(WarpState& w) {
    // Adopt a pushed stack if one landed on this block.
    if (slots_[w.block].has_value()) {
      StackSnapshot snap = std::move(*slots_[w.block]);
      slots_[w.block].reset();
      w.clock = std::max(w.clock, slot_clock_[w.block]);
      adopt(w, snap);
      --idle_count_[w.block];
      charge(w, cfg_.cost.global_copy_cycles(snap.elements));
      return;
    }
    if (try_adopt_recovery(w)) {
      --idle_count_[w.block];
      return;
    }
    // Retry a local steal: a sibling may have refilled.
    if (cfg_.local_steal && try_local_steal(w)) {
      --idle_count_[w.block];
      return;
    }
    if (v_cursor_ < v_end_ && grab_chunk(w)) {
      --idle_count_[w.block];
      return;
    }
    w.clock += cfg_.cost.idle_poll;
  }

  void step(WarpState& w) {
    if (w.idle) {
      poll_idle(w);
      return;
    }
    if (w.level < 0) {
      acquire_work(w);
      return;
    }
    if (injector_.has_value()) {
      // Decisions are keyed by (warp id, active-step ordinal): stable under
      // the deterministic virtual-time schedule, so the same seed aborts the
      // same steps every run. Checked before the step mutates anything, so
      // the captured frame resumes exactly here.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(w.id) << 40) | w.steps;
      ++w.steps;
      if (injector_->should_fail(FaultSite::kWarpAbort, key)) {
        abort_warp(w);
        return;
      }
      const auto lvl = static_cast<std::size_t>(w.level);
      const bool will_materialize = w.iter[lvl] < w.limit[lvl];
      if (will_materialize &&
          injector_->should_fail(FaultSite::kSlabAlloc, key)) {
        abort_warp(w);
        return;
      }
      // The step will execute: any earlier failure of this lineage was
      // transient, so its retry budget resets. The budget therefore bounds
      // consecutive no-progress failures (persistent faults still fail
      // closed), not total transient faults over a unit's lifetime.
      w.unit_attempts = 0;
    }
    maybe_push_global(w);
    charge(w, cfg_.cost.stack_step);
    const auto l = static_cast<std::size_t>(w.level);
    if (w.iter[l] >= w.limit[l]) {
      if (l == 0) {
        w.level = -1;  // chunk exhausted; acquire next step
        return;
      }
      if (next_column(w, l)) return;
      // All unrolled columns done: backtrack (paper Fig. 7 line 22).
      w.level = static_cast<int>(l) - 1;
      w.iter[l - 1] += w.num_cols[l];
      w.num_cols[l] = 0;
      return;
    }
    if (l + 2 >= k_) {
      descend_and_count(w, l);
      return;
    }
    descend(w, l);
  }

  const GraphView g_;
  const MatchingPlan& plan_;
  EngineConfig cfg_;
  CancelPoller poller_;
  EmbeddingSink* sink_ = nullptr;
  std::size_t k_;
  std::uint64_t shared_per_warp_ = 0;

  VertexId v_cursor_ = 0;
  VertexId v_end_ = 0;
  bool interrupted_ = false;
  std::vector<WarpState> warps_;
  std::vector<std::optional<StackSnapshot>> slots_;
  std::vector<std::uint64_t> slot_clock_;
  std::vector<std::uint32_t> idle_count_;
  std::vector<std::vector<std::int16_t>> carry_;
  EngineStats stats_;
  std::optional<FaultInjector> injector_;
  std::deque<RecoveryUnit> recovery_;
  std::uint64_t steal_seq_ = 0;  // key basis for in-transit loss decisions
  bool recovery_exhausted_ = false;

  /// Emission state: per-outer-index staging buckets, the next bucket to
  /// flush, and whether the sink still accepts posts.
  bool emit_active_ = false;
  std::vector<std::vector<Embedding>> emit_buckets_;
  std::uint64_t emit_next_flush_ = 0;
  std::uint64_t sched_iters_ = 0;
};

MatchResult StackEngine::run() {
  const auto total_warps = cfg_.device.total_warps();
  warps_.assign(total_warps, WarpState{});
  for (std::uint32_t i = 0; i < total_warps; ++i) {
    WarpState& w = warps_[i];
    w.id = i;
    w.block = i / cfg_.device.warps_per_block;
    w.lane_in_block = i % cfg_.device.warps_per_block;
    w.values.assign(plan_.num_nodes(),
                    std::vector<std::vector<VertexId>>(cfg_.unroll));
  }
  slots_.assign(cfg_.device.num_blocks, std::nullopt);
  slot_clock_.assign(cfg_.device.num_blocks, 0);
  idle_count_.assign(cfg_.device.num_blocks, 0);

  if (sink_ != nullptr) {
    sink_->begin(v_end_);
    emit_buckets_.assign(v_end_, {});
    emit_active_ = true;
  }

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  for (auto& w : warps_) {
    // Stagger the initial work grab round-robin across blocks: consecutive
    // level-0 chunks land in different thread blocks, so local stealing can
    // fan each chunk out to the whole block (important when |V| is small
    // relative to the device).
    w.clock = w.lane_in_block * cfg_.device.num_blocks + w.block;
    heap.push({w.clock, w.id});
  }

  while (!heap.empty()) {
    // Cooperative interruption: deadlines are wall-clock even though engine
    // time is simulated — a size-7 query on a skewed graph can run long in
    // real time. Per-warp partial counts are still aggregated below.
    if (poller_.fired()) {
      interrupted_ = true;
      break;
    }
    // A recovery unit exceeded its retry budget: the run cannot guarantee an
    // exact count any more, so fail fast and let the service retry the whole
    // query or fall back to another engine.
    if (recovery_exhausted_) break;
    auto [clock, id] = heap.top();
    heap.pop();
    WarpState& w = warps_[id];
    if (w.done) continue;
    if (clock != w.clock) {  // stale entry (clock advanced by a steal)
      heap.push({w.clock, id});
      continue;
    }
    // Global termination: nothing running, nothing pending, nothing left.
    if (w.idle && v_cursor_ >= v_end_) {
      bool any_running = false;
      for (const auto& other : warps_)
        any_running |= (!other.done && !other.idle);
      bool any_pending = !recovery_.empty();
      for (const auto& slot : slots_) any_pending |= slot.has_value();
      if (!any_running && !any_pending) {
        w.done = true;
        continue;
      }
    }
    step(w);
    heap.push({w.clock, w.id});
    // Periodic bucket release: amortizes the O(warps) watermark scan.
    if (emit_active_ && (++sched_iters_ & 127) == 0) emit_flush();
  }
  // Final flush. On a clean run the watermark is v_end_ (nothing live); on
  // interruption or recovery exhaustion it stops at the first incomplete
  // bucket, so the stream ends at a well-defined complete-bucket prefix.
  emit_flush();

  MatchResult result;
  for (const auto& w : warps_) {
    result.count += w.count;
    stats_.busy_cycles += w.busy;
    stats_.makespan_cycles = std::max(stats_.makespan_cycles, w.clock);
    stats_.set_ops += w.ops;
    stats_.chunks_grabbed += w.chunks;
    stats_.sets_built += w.sets_built;
  }
  stats_.makespan_cycles += cfg_.cost.kernel_launch;  // one launch total
  stats_.sim_ms = cfg_.cost.to_ms(stats_.makespan_cycles);
  stats_.occupancy =
      stats_.makespan_cycles == 0
          ? 1.0
          : static_cast<double>(stats_.busy_cycles) /
                (static_cast<double>(stats_.makespan_cycles) * total_warps);
  stats_.shared_bytes_per_block =
      shared_per_warp_ * cfg_.device.warps_per_block;
  stats_.stack_bytes = static_cast<std::uint64_t>(total_warps) *
                       plan_.num_nodes() * cfg_.unroll *
                       std::max<EdgeId>(g_.max_degree(), 1) * sizeof(VertexId);
  stats_.recovery_exhausted = recovery_exhausted_;
  result.stats = stats_;
  result.query = stats_.to_query_stats();
  if (recovery_exhausted_) {
    result.query.status = QueryStatus::kInternalError;
  } else if (interrupted_) {
    result.query.status = poller_.token()->status();
  }
  return result;
}

}  // namespace

MatchResult stmatch_match(GraphView g, const MatchingPlan& plan,
                          const EngineConfig& cfg, const CancelToken* cancel,
                          EmbeddingSink* sink) {
  if (cfg.fault.enabled()) {
    // Whole-engine-call failure: thrown (not returned) so the service layer's
    // exception boundary and fallback chain are exercised end to end.
    FaultInjector probe(cfg.fault);
    if (probe.should_fail(FaultSite::kEngineThrow, 0)) {
      throw FaultInjectedError("injected fault: SIMT engine call failed");
    }
  }
  StackEngine engine(g, plan, cfg, cancel, sink);
  return engine.run();
}

MatchResult stmatch_match_pattern(GraphView g, const Pattern& p,
                                  const PlanOptions& plan_opts,
                                  const EngineConfig& cfg) {
  MatchingPlan plan(reorder_for_matching(p), plan_opts);
  return stmatch_match(g, plan, cfg);
}

}  // namespace stm
