// Host-parallel execution path: real std::thread workers with dynamic
// chunk distribution over the outermost loop.
//
// This is the execution mode a CPU-only downstream user runs in production;
// the SIMT engine (engine.hpp) is the paper-faithful simulated-GPU path.
// Both consume the same MatchingPlan and must produce identical counts.
#pragma once

#include <cstddef>

#include "core/cancel.hpp"
#include "core/config.hpp"
#include "core/emit.hpp"
#include "core/fault.hpp"
#include "core/query_stats.hpp"
#include "graph/view.hpp"
#include "pattern/plan.hpp"

namespace stm {

struct HostEngineConfig {
  /// Worker threads (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Outer-loop vertices claimed per work grab.
  VertexId chunk_size = 16;
  /// First outer-loop vertex (cursor start). Lets a resumed stream skip the
  /// prefix already delivered to the client.
  VertexId v_begin = 0;
  /// Deterministic fault-injection schedule (off by default). Sites
  /// interpreted here: kHostTask (a chunk's partial work is discarded and
  /// the chunk re-enqueued, bounded by max_unit_attempts) and kEngineThrow
  /// (the host_match call itself throws FaultInjectedError).
  FaultConfig fault;
};

struct HostMatchResult {
  /// Match count; partial when stats.status != kOk.
  std::uint64_t count = 0;
  /// Unified per-query statistics (engine_ms = wall-clock of the parallel
  /// section, scalar_ops = aggregate scalar set-operation work).
  QueryStats stats;
};

/// Counts matches of the plan on real threads. A non-null `cancel` token is
/// polled cooperatively by every worker; when it fires, the run returns
/// early with the partial count and stats.status = kDeadlineExceeded /
/// kCancelled.
///
/// With a non-null `sink` the engine also emits every matched embedding:
/// bucket id = chunk ordinal ((chunk.begin - v_begin) / chunk_size), dense
/// and ascending in outer-loop vertex, so the sequenced stream is the plan's
/// DFS order. A chunk's bucket is posted only after the chunk completed
/// exactly (interrupted or kHostTask-failed chunks are never posted, keeping
/// the stream exact; a retried chunk posts on its successful attempt).
/// Workers never block on backpressure while claimable work (including retry
/// chunks) exists — completed buckets park in a per-worker pending list and
/// are flushed opportunistically, with a final blocking flush at exit.
HostMatchResult host_match(GraphView g, const MatchingPlan& plan,
                           const HostEngineConfig& cfg = {},
                           const CancelToken* cancel = nullptr,
                           EmbeddingSink* sink = nullptr);

}  // namespace stm
