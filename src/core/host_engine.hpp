// Host-parallel execution path: real std::thread workers with dynamic
// chunk distribution over the outermost loop.
//
// This is the execution mode a CPU-only downstream user runs in production;
// the SIMT engine (engine.hpp) is the paper-faithful simulated-GPU path.
// Both consume the same MatchingPlan and must produce identical counts.
#pragma once

#include <cstddef>

#include "core/config.hpp"
#include "graph/graph.hpp"
#include "pattern/plan.hpp"

namespace stm {

struct HostEngineConfig {
  /// Worker threads (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Outer-loop vertices claimed per work grab.
  VertexId chunk_size = 16;
};

struct HostMatchResult {
  std::uint64_t count = 0;
  /// Wall-clock milliseconds of the parallel section.
  double wall_ms = 0.0;
  /// Aggregate scalar set-operation work.
  std::uint64_t scalar_ops = 0;
};

/// Counts matches of the plan on real threads.
HostMatchResult host_match(const Graph& g, const MatchingPlan& plan,
                           const HostEngineConfig& cfg = {});

}  // namespace stm
