// The STMatch engine: stack-based graph pattern matching (paper §IV-§VII).
//
// The backtracking loop of Algorithm 1 runs as an explicit stack machine on
// every warp of a simulated GPU: candidate sets live in per-warp slabs
// ("global memory"), loop state in shared memory, and the whole match
// completes in a single simulated kernel. Load balance comes from two-level
// work stealing (§V) and intra-warp utilization from loop unrolling with
// fused multi-set operations (§VI); loop-invariant code motion is inherited
// from the MatchingPlan (§VII).
#pragma once

#include "core/cancel.hpp"
#include "core/config.hpp"
#include "graph/view.hpp"
#include "pattern/plan.hpp"

namespace stm {

/// Runs the engine for `plan` (built from a reordered pattern) on `g`.
/// Deterministic: the virtual-time warp scheduler makes every run, including
/// all stealing decisions, bit-reproducible. A non-null `cancel` token is
/// polled in the scheduler loop (wall-clock deadlines apply even though the
/// engine's own time is simulated); when it fires, the run returns the
/// partial count with query.status set.
MatchResult stmatch_match(GraphView g, const MatchingPlan& plan,
                          const EngineConfig& cfg = {},
                          const CancelToken* cancel = nullptr);

/// Convenience wrapper: reorders `p` into matching order, compiles a plan,
/// and runs the engine.
MatchResult stmatch_match_pattern(GraphView g, const Pattern& p,
                                  const PlanOptions& plan_opts = {},
                                  const EngineConfig& cfg = {});

}  // namespace stm
