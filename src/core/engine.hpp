// The STMatch engine: stack-based graph pattern matching (paper §IV-§VII).
//
// The backtracking loop of Algorithm 1 runs as an explicit stack machine on
// every warp of a simulated GPU: candidate sets live in per-warp slabs
// ("global memory"), loop state in shared memory, and the whole match
// completes in a single simulated kernel. Load balance comes from two-level
// work stealing (§V) and intra-warp utilization from loop unrolling with
// fused multi-set operations (§VI); loop-invariant code motion is inherited
// from the MatchingPlan (§VII).
#pragma once

#include "core/cancel.hpp"
#include "core/config.hpp"
#include "core/emit.hpp"
#include "graph/view.hpp"
#include "pattern/plan.hpp"

namespace stm {

/// Runs the engine for `plan` (built from a reordered pattern) on `g`.
/// Deterministic: the virtual-time warp scheduler makes every run, including
/// all stealing decisions, bit-reproducible. A non-null `cancel` token is
/// polled in the scheduler loop (wall-clock deadlines apply even though the
/// engine's own time is simulated); when it fires, the run returns the
/// partial count with query.status set.
///
/// With a non-null `sink` the engine also emits every matched embedding:
/// bucket id = the outer-loop virtual index of matched[0], so bucket order
/// is outer-vertex order regardless of which warp (or steal lineage) found
/// the match. Matches are staged per bucket as warps count them; a bucket is
/// posted (sorted into DFS order) once the scheduler's low-watermark proves
/// no live work unit — unclaimed range, running warp, migrating snapshot, or
/// recovery unit — can still produce a match in it. Warp aborts and steal
/// losses therefore never affect the stream: their exact-resume recovery
/// re-stages nothing and loses nothing.
MatchResult stmatch_match(GraphView g, const MatchingPlan& plan,
                          const EngineConfig& cfg = {},
                          const CancelToken* cancel = nullptr,
                          EmbeddingSink* sink = nullptr);

/// Convenience wrapper: reorders `p` into matching order, compiles a plan,
/// and runs the engine.
MatchResult stmatch_match_pattern(GraphView g, const Pattern& p,
                                  const PlanOptions& plan_opts = {},
                                  const EngineConfig& cfg = {});

}  // namespace stm
