// Deterministic fault injection for chaos testing the execution paths.
//
// A FaultInjector makes seeded, stateless failure decisions at named
// injection sites threaded through the engines: the decision for a site is a
// pure hash of (seed, incarnation, site, key), where `key` is a stable
// identity of the unit of work (chunk begin vertex, warp id + step counter,
// device index + attempt, pool task sequence number). Because decisions
// depend only on identities — never on thread interleaving or wall clock —
// the same seed produces the same failure schedule, the same recovery path,
// and bit-identical final counts on every run.
//
// All sites default to rate 0 (off); production builds pay only a branch on
// `enabled()` per run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace stm {

/// Where a fault can be injected. Each site models a distinct failure domain
/// of the paper's execution model (warps, slabs, steals, devices) or of the
/// serving stack (host tasks, pool workers, whole engine calls).
enum class FaultSite : std::uint8_t {
  kWarpAbort = 0,   // a SIMT warp dies mid-stack (SM fault); frame recovered
  kSlabAlloc,       // "global memory" slab allocation fails at a descend
  kStealLoss,       // a migrating stolen stack snapshot is lost in transit
  kHostTask,        // a host worker's chunk task fails; partial work discarded
  kDeviceFail,      // a whole simulated device fails; its V-slice re-run
  kPoolTask,        // a thread-pool worker drops a task (requeued, bounded)
  kEngineThrow,     // the engine entry point throws (exercises the service
                    // exception boundary and the fallback chain)
  kUpdateApply,     // a dynamic-graph update batch fails before publishing
                    // its snapshot (exercises apply atomicity)
  kShardFailure,    // a sharded-execution unit (shard-local run or cut-edge
                    // anchor chunk) fails; re-run with bumped incarnation
  kEmitDrop,        // a posted embedding batch is dropped in the emission
                    // transport; the retained staged copy is retransmitted
  kWalAppend,       // a write-ahead-log append is torn (short/garbled bytes
                    // hit the file); the writer truncates back to the record
                    // start and retries, failing closed on exhaustion
  kCheckpointWrite, // a checkpoint temp file is written torn/garbled; the
                    // writer discards it and retries, failing closed on
                    // exhaustion (the WAL keeps full durability meanwhile)
  kPageRead,        // a spill-tier page read returns short or garbled bytes;
                    // the length/CRC check rejects the frame and the pager
                    // retries with a bumped attempt key, failing closed on
                    // exhaustion (no corrupt page is ever served)
};
inline constexpr std::size_t kNumFaultSites = 13;

const char* to_string(FaultSite site);

/// Thrown by the kEngineThrow site: a non-check_error exception escaping an
/// engine call, which the service must contain at its execution boundary.
class FaultInjectedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-run fault schedule: a seed plus one firing rate per site. Value type;
/// carried inside EngineConfig / HostEngineConfig so chaos tests configure
/// faults through the normal request path.
struct FaultConfig {
  /// Schedule seed. Same seed (and rates) => identical failure schedule.
  std::uint64_t seed = 0;
  /// Retry attempt of the surrounding engine call; the service bumps this on
  /// each retry so a transient fault can clear deterministically.
  std::uint64_t incarnation = 0;
  /// Probability in [0, 1] that a decision at each site fires.
  std::array<double, kNumFaultSites> rates{};
  /// Execution attempts allowed per recovery unit (failed chunk, captured
  /// warp frame, device slice) before the run gives up with kInternalError.
  std::uint32_t max_unit_attempts = 8;

  double rate(FaultSite site) const {
    return rates[static_cast<std::size_t>(site)];
  }
  FaultConfig& set_rate(FaultSite site, double r) {
    rates[static_cast<std::size_t>(site)] = r;
    return *this;
  }
  bool enabled() const {
    for (double r : rates)
      if (r > 0.0) return true;
    return false;
  }
};

/// Seeded, thread-safe fault oracle. `should_fail` is a pure function of the
/// configuration and the caller-supplied key; the per-site counters exist
/// only for statistics and never influence decisions.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg) : cfg_(cfg) {}

  /// Decides whether the work unit identified by `key` fails at `site`.
  /// Deterministic and independent of call order across threads.
  bool should_fail(FaultSite site, std::uint64_t key) {
    const double r = cfg_.rate(site);
    if (r <= 0.0) return false;
    if (decide(site, key) >= r) return false;
    injected_[static_cast<std::size_t>(site)].fetch_add(
        1, std::memory_order_relaxed);
    return true;
  }

  /// The decision value in [0, 1) compared against the site rate; exposed so
  /// tests can search for seeds with a particular schedule.
  double decide(FaultSite site, std::uint64_t key) const;

  std::uint64_t injected(FaultSite site) const {
    return injected_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_injected() const {
    std::uint64_t total = 0;
    for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  const FaultConfig& config() const { return cfg_; }

 private:
  FaultConfig cfg_;
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> injected_{};
};

}  // namespace stm
