// Embedding emission interface between the engines and the stream layer.
//
// When an engine runs with a non-null EmbeddingSink it posts every matched
// embedding, grouped into *buckets* keyed by a deterministic ordering id.
// A bucket is the engine's natural unit of outer-loop work — a host-engine
// chunk ordinal, a SIMT outer-loop virtual index — chosen so that
//
//   (a) bucket ids form a dense range [0, num_buckets) announced via begin(),
//   (b) concatenating buckets 0, 1, 2, ... yields the extension-tree DFS
//       order of the plan (lexicographic order of plan-position tuples,
//       because every candidate set iterates ascending), and
//   (c) each bucket is posted exactly once, with its embeddings already in
//       DFS order, only after the engine has fully and exactly enumerated it
//       (a bucket whose work unit failed or was interrupted is never posted).
//
// The sink (stm::stream::EmitPipeline) re-merges buckets into the single
// global order; the engine stays ignorant of backpressure policy, fault
// injection at the transport (kEmitDrop), and vertex-order remapping.
//
// Embeddings are posted in *plan order*: embedding[i] is the data vertex
// matched at plan position i (the reordered pattern's vertex i). The stream
// layer remaps to the original pattern's vertex order at the API boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace stm {

/// One matched embedding; meaning of the index depends on the layer (plan
/// position inside the engines, original pattern vertex at the service API).
using Embedding = std::vector<VertexId>;

class EmbeddingSink {
 public:
  virtual ~EmbeddingSink() = default;

  /// Announces the dense bucket space [0, num_buckets). Called once, before
  /// any post. Buckets never posted are treated as empty.
  virtual void begin(std::uint64_t num_buckets) = 0;

  /// Blocking post: hands over one complete bucket. May block on
  /// backpressure until the consumer catches up (the head bucket — the next
  /// one to be released — is exempt, so the engine can always make
  /// progress). `batch` is consumed (moved from) on success and on abort.
  /// Returns false when the stream has been aborted or has failed; the
  /// engine should stop emitting (it may keep counting).
  virtual bool post(std::uint64_t bucket, std::vector<Embedding>&& batch) = 0;

  /// Non-blocking post for producers that must never park while other work
  /// (e.g. a failed chunk awaiting retry) could exist. On kWouldBlock the
  /// batch is left untouched and the caller retains it for a later attempt.
  enum class TryPost : std::uint8_t { kPosted, kWouldBlock, kAborted };
  virtual TryPost try_post(std::uint64_t bucket,
                           std::vector<Embedding>& batch) = 0;
};

}  // namespace stm
