#include "core/fault.hpp"

#include "util/rng.hpp"

namespace stm {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kWarpAbort: return "warp_abort";
    case FaultSite::kSlabAlloc: return "slab_alloc";
    case FaultSite::kStealLoss: return "steal_loss";
    case FaultSite::kHostTask: return "host_task";
    case FaultSite::kDeviceFail: return "device_fail";
    case FaultSite::kPoolTask: return "pool_task";
    case FaultSite::kEngineThrow: return "engine_throw";
    case FaultSite::kUpdateApply: return "update_apply";
    case FaultSite::kShardFailure: return "shard_failure";
    case FaultSite::kEmitDrop: return "emit_drop";
    case FaultSite::kWalAppend: return "wal_append";
    case FaultSite::kCheckpointWrite: return "checkpoint_write";
    case FaultSite::kPageRead: return "page_read";
  }
  return "unknown";
}

double FaultInjector::decide(FaultSite site, std::uint64_t key) const {
  // Three rounds of splitmix64 over (seed, incarnation, site, key): each
  // input perturbs the chain state, so nearby keys and sites decorrelate.
  std::uint64_t state =
      cfg_.seed ^ (cfg_.incarnation * 0x9e3779b97f4a7c15ULL);
  splitmix64(state);
  state ^= (static_cast<std::uint64_t>(site) + 1) * 0xbf58476d1ce4e5b9ULL;
  splitmix64(state);
  state ^= key;
  const std::uint64_t h = splitmix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace stm
