// Registered-pattern index for standing queries (DESIGN.md §16).
//
// PatternIndex holds every standing registration, deduplicated by canonical
// form (pattern/canonical.hpp): registrations whose patterns are isomorphic
// — the duplicate-heavy regime of "millions of users each registering
// alerts" — share one *group* whose representative's anchored plans live in
// a single PlanTrie. Register/deregister touch only the registration map,
// the group's refcount, and (for the first/last member of a group) the
// group's trie paths — no global rebuild, no other query perturbed.
//
// The index stores registrations and plans; evaluation is the
// MultiQueryEvaluator's one walk per delta edge (mqo/evaluator.hpp), which
// produces one GroupDelta per group. project() translates a group's delta
// back into an individual registration's terms: divide embeddings by
// |Aut| for kUniqueSubgraphs, remap embeddings from representative vertex
// order through the registration's canonical permutation, lex-sort — the
// same numbers and lists the per-pattern IncrementalMatcher/DeltaStreamer
// pipeline produces, bit for bit.
//
// Not thread-safe; the owning session serializes access (service.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/emit.hpp"
#include "mqo/plan_trie.hpp"
#include "pattern/pattern.hpp"
#include "pattern/plan.hpp"

namespace stm::mqo {

/// The shared-pass outcome for one pattern group, in *representative*
/// terms: embedding-count change plus (only for groups with an embedding
/// subscriber) the added/retracted embeddings in representative vertex
/// order, unsorted.
struct GroupDelta {
  std::int64_t embeddings = 0;
  std::vector<Embedding> added;
  std::vector<Embedding> retracted;
};

/// One MultiQueryEvaluator::evaluate() result: group slot -> delta, plus
/// walk accounting.
struct EvalResult {
  std::vector<GroupDelta> groups;
  /// Seeded trie walks issued (delta edges x orientations that pass the
  /// depth-1/2 label checks).
  std::uint64_t seed_walks = 0;
  /// Trie-node arrivals during the walks — the shared-pass analogue of
  /// per-pattern anchored_runs.
  std::uint64_t node_visits = 0;
  std::uint64_t delta_edges = 0;
};

/// A group delta projected onto one registration: the count change in the
/// registration's CountMode and (for embedding subscribers) the lex-sorted
/// added/retracted lists in the registration's own pattern vertex order.
struct QueryDelta {
  std::int64_t delta = 0;
  std::vector<Embedding> added;
  std::vector<Embedding> retracted;
};

struct IndexStats {
  std::size_t registrations = 0;
  std::size_t groups = 0;
  TrieStats trie;
};

class PatternIndex {
 public:
  /// Throws check_error for the registrations anchored enumeration cannot
  /// serve: vertex-induced options or patterns with fewer than two
  /// vertices. Call before add() (and before any side effect like a WAL
  /// append): add() itself performs the same checks, so pre-validated adds
  /// never fail halfway.
  static void validate(const Pattern& pattern, const PlanOptions& plan);

  /// Registers `id` with the given pattern/options. `wants_embeddings`
  /// marks the registration as an embedding-delta subscriber, which makes
  /// the shared pass collect (not just count) the group's embeddings. An
  /// already-registered id is replaced.
  void add(std::uint64_t id, const Pattern& pattern, const PlanOptions& plan,
           bool wants_embeddings);

  /// Deregisters `id`; drops the group and its trie paths when this was the
  /// last member. Returns false when the id is unknown.
  bool remove(std::uint64_t id);

  bool contains(std::uint64_t id) const { return regs_.contains(id); }
  std::size_t size() const { return regs_.size(); }
  bool empty() const { return regs_.empty(); }
  std::size_t num_groups() const { return by_canon_.size(); }

  /// Any *other* registration isomorphic to `pattern` (the canonical-group
  /// sibling). The session converts a sibling's standing count into a new
  /// duplicate registration's baseline instead of re-enumerating the graph.
  std::optional<std::uint64_t> any_member(const Pattern& pattern) const;

  /// |Aut| of the registration's pattern.
  std::uint64_t automorphisms(std::uint64_t id) const;
  bool wants_embeddings(std::uint64_t id) const;
  const Pattern& pattern_of(std::uint64_t id) const;
  CountMode count_mode(std::uint64_t id) const;

  QueryDelta project(std::uint64_t id, const EvalResult& result) const;

  IndexStats stats() const;
  const PlanTrie& trie() const { return trie_; }

  /// Group-slot bound for sizing EvalResult::groups (slots of removed
  /// groups are reused, so this stays dense under churn).
  std::size_t num_group_slots() const { return groups_.size(); }
  /// Whether the group in `slot` has any embedding subscriber (evaluator
  /// probe; unoccupied slots answer false).
  bool group_collects(std::size_t slot) const;

 private:
  struct Group {
    std::string canon;
    Pattern rep;  // pattern relabeled into canonical order
    std::uint64_t aut = 1;
    std::uint32_t embed_refs = 0;
    std::set<std::uint64_t> members;
    std::vector<TrieNode*> terminal_nodes;
    bool occupied = false;
  };
  struct Registration {
    std::uint32_t group = 0;
    Pattern pattern;
    /// canonical_permutation(pattern): representative vertex i = pattern
    /// vertex canon_perm[i].
    std::vector<std::size_t> canon_perm;
    CountMode mode = CountMode::kEmbeddings;
    bool wants_embeddings = false;
  };

  std::uint32_t ensure_group(const Pattern& pattern, const std::string& canon);
  void drop_member(std::uint64_t id);

  std::vector<Group> groups_;  // slot-indexed; freed slots reused
  std::vector<std::uint32_t> free_slots_;
  std::map<std::string, std::uint32_t> by_canon_;
  std::map<std::uint64_t, Registration> regs_;
  PlanTrie trie_;
};

}  // namespace stm::mqo
