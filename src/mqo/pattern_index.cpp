#include "mqo/pattern_index.hpp"

#include <algorithm>
#include <utility>

#include "baselines/reference.hpp"
#include "dynamic/incremental.hpp"
#include "pattern/canonical.hpp"
#include "util/check.hpp"

namespace stm::mqo {

void PatternIndex::validate(const Pattern& pattern, const PlanOptions& plan) {
  STM_CHECK_MSG(plan.induced == Induced::kEdge,
                "the standing-query index supports edge-induced semantics "
                "only: a vertex-induced match can change without containing "
                "any delta edge");
  STM_CHECK_MSG(pattern.size() >= 2,
                "indexed standing queries require patterns with at least two "
                "vertices");
  STM_CHECK_MSG(pattern.is_connected(), "pattern must be connected");
}

std::uint32_t PatternIndex::ensure_group(const Pattern& pattern,
                                         const std::string& canon) {
  if (const auto it = by_canon_.find(canon); it != by_canon_.end()) {
    return it->second;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(groups_.size());
    groups_.emplace_back();
  }
  Group& g = groups_[slot];
  g.canon = canon;
  g.rep = pattern.relabeled(canonical_permutation(pattern));
  // |Aut| via the edge-induced embedding count of the pattern in itself
  // (every injective edge-preserving self-map is an automorphism); computed
  // once per group, consulted by every kUniqueSubgraphs projection.
  g.aut = reference_count(pattern_as_graph(g.rep), g.rep,
                          {Induced::kEdge, CountMode::kEmbeddings});
  STM_CHECK(g.aut >= 1);
  g.embed_refs = 0;
  g.members.clear();
  g.terminal_nodes.clear();
  g.occupied = true;
  // One anchored path per (unordered) representative edge — the exact
  // anchor set of the per-pattern AnchoredEnumerator, so the shared walk
  // issues the same per-(anchor, edge) contributions.
  for (std::size_t a = 0; a < g.rep.size(); ++a) {
    for (std::size_t b = a + 1; b < g.rep.size(); ++b) {
      if (!g.rep.has_edge(a, b)) continue;
      TrieNode* node = trie_.insert(anchored_path(g.rep, a, b), slot);
      // Automorphic anchors land on the same node (several terminals, one
      // node); deduplicate so teardown prunes each node exactly once.
      if (std::find(g.terminal_nodes.begin(), g.terminal_nodes.end(), node) ==
          g.terminal_nodes.end()) {
        g.terminal_nodes.push_back(node);
      }
    }
  }
  by_canon_.emplace(canon, slot);
  return slot;
}

void PatternIndex::add(std::uint64_t id, const Pattern& pattern,
                       const PlanOptions& plan, bool wants_embeddings) {
  validate(pattern, plan);
  if (regs_.contains(id)) drop_member(id);

  Registration reg;
  reg.pattern = pattern;
  reg.canon_perm = canonical_permutation(pattern);
  reg.mode = plan.count_mode;
  reg.wants_embeddings = wants_embeddings;
  const std::string canon = canonical_form(pattern);
  reg.group = ensure_group(pattern, canon);

  Group& g = groups_[reg.group];
  g.members.insert(id);
  if (wants_embeddings) ++g.embed_refs;
  regs_.insert_or_assign(id, std::move(reg));
}

void PatternIndex::drop_member(std::uint64_t id) {
  const auto it = regs_.find(id);
  STM_CHECK(it != regs_.end());
  const Registration& reg = it->second;
  Group& g = groups_[reg.group];
  g.members.erase(id);
  if (reg.wants_embeddings) {
    STM_CHECK(g.embed_refs > 0);
    --g.embed_refs;
  }
  if (g.members.empty()) {
    for (TrieNode* node : g.terminal_nodes) {
      trie_.remove_terminals(node, reg.group);
    }
    by_canon_.erase(g.canon);
    g = Group{};
    free_slots_.push_back(reg.group);
  }
  regs_.erase(it);
}

bool PatternIndex::remove(std::uint64_t id) {
  if (!regs_.contains(id)) return false;
  drop_member(id);
  return true;
}

std::optional<std::uint64_t> PatternIndex::any_member(
    const Pattern& pattern) const {
  const auto it = by_canon_.find(canonical_form(pattern));
  if (it == by_canon_.end()) return std::nullopt;
  const Group& g = groups_[it->second];
  STM_CHECK(!g.members.empty());
  return *g.members.begin();
}

std::uint64_t PatternIndex::automorphisms(std::uint64_t id) const {
  return groups_[regs_.at(id).group].aut;
}

bool PatternIndex::wants_embeddings(std::uint64_t id) const {
  return regs_.at(id).wants_embeddings;
}

const Pattern& PatternIndex::pattern_of(std::uint64_t id) const {
  return regs_.at(id).pattern;
}

CountMode PatternIndex::count_mode(std::uint64_t id) const {
  return regs_.at(id).mode;
}

bool PatternIndex::group_collects(std::size_t slot) const {
  return slot < groups_.size() && groups_[slot].occupied &&
         groups_[slot].embed_refs > 0;
}

QueryDelta PatternIndex::project(std::uint64_t id,
                                 const EvalResult& result) const {
  const Registration& reg = regs_.at(id);
  STM_CHECK(reg.group < result.groups.size());
  const GroupDelta& gd = result.groups[reg.group];

  QueryDelta out;
  out.delta = gd.embeddings;
  if (reg.mode == CountMode::kUniqueSubgraphs) {
    const auto aut = static_cast<std::int64_t>(groups_[reg.group].aut);
    STM_CHECK_MSG(out.delta % aut == 0,
                  "embedding delta " << out.delta << " not divisible by |Aut| "
                                     << aut);
    out.delta /= aut;
  }
  if (!reg.wants_embeddings) return out;

  // Representative-order embedding ê (ê[i] = data vertex of rep vertex i)
  // maps to the registration's own order via rep vertex i = pattern vertex
  // canon_perm[i]; lex-sorting afterwards matches DeltaStreamer's output
  // order exactly.
  const std::size_t k = reg.pattern.size();
  const auto remap = [&](const std::vector<Embedding>& in) {
    std::vector<Embedding> mapped;
    mapped.reserve(in.size());
    for (const Embedding& e : in) {
      Embedding orig(k);
      for (std::size_t i = 0; i < k; ++i) orig[reg.canon_perm[i]] = e[i];
      mapped.push_back(std::move(orig));
    }
    std::sort(mapped.begin(), mapped.end());
    return mapped;
  };
  out.added = remap(gd.added);
  out.retracted = remap(gd.retracted);
  return out;
}

IndexStats PatternIndex::stats() const {
  IndexStats out;
  out.registrations = regs_.size();
  out.groups = by_canon_.size();
  out.trie = trie_.stats();
  return out;
}

}  // namespace stm::mqo
