// Single-pass batched-delta evaluation over the plan trie (DESIGN.md §16).
//
// MultiQueryEvaluator computes, in one shot, what the per-pattern loop
// computes with one IncrementalMatcher/DeltaStreamer per standing query: the
// exact per-query count and embedding deltas caused by one applied batch.
// It rides the same prefix inclusion–exclusion identity (two DeltaOverlay
// passes, one per delta-edge polarity; see IncrementalMatcher::count_delta),
// but where the per-pattern loop issues |patterns| x |anchors| seeded
// enumerations per delta edge, this evaluator issues ONE walk over the
// PlanTrie per (delta edge, orientation): shared prefixes are extended once,
// and enumeration fans out into per-group suffixes only at divergence nodes.
// Arriving at a node credits every terminal attached to it — the anchored
// plan of some pattern group completes there — so a single partial embedding
// feeds every registered query it matches.
//
// Exactness: for a fixed data edge and pattern anchor, the number of
// injective embeddings mapping the anchor onto the edge does not depend on
// the order the remaining vertices are enumerated in. The trie's step order
// (plan_trie.hpp) may differ from the per-pattern planner's, yet both count
// the same embedding set per (group, anchor, edge, orientation) — summed
// over the batch the deltas agree bit for bit, which the harness MQO lane
// asserts against IncrementalMatcher, DeltaStreamer, and full
// re-enumeration.
#pragma once

#include <memory>

#include "dynamic/dynamic_graph.hpp"
#include "mqo/pattern_index.hpp"
#include "setops/simd.hpp"

namespace stm::mqo {

class MultiQueryEvaluator {
 public:
  explicit MultiQueryEvaluator(const PatternIndex& index);

  /// The per-group deltas caused by applying `applied` to version `from`
  /// (arguments as for IncrementalMatcher::count_delta). One trie walk per
  /// (delta edge, orientation); groups with embedding subscribers get their
  /// added/retracted embeddings collected, others only counted.
  EvalResult evaluate(const std::shared_ptr<const GraphSnapshot>& from,
                      const DeltaEdges& applied) const;

  /// One edge's contribution: walks the trie for data edge (u, v) — both
  /// orientations — over `g`, crediting counts (and embeddings for
  /// collecting groups) into *out with polarity `sign` (+1 inserted-pass,
  /// -1 deleted-pass). (u, v) must be an edge of `g`. Exposed for tests and
  /// tools; evaluate() is the batch entry point.
  void accumulate(GraphView g, VertexId u, VertexId v, int sign,
                  EvalResult* out) const;

 private:
  const PatternIndex& index_;
  const simd::Kernels& simd_;
};

}  // namespace stm::mqo
