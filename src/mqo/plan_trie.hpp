// Shared-prefix trie over anchored matching plans (DESIGN.md §16).
//
// Every standing query is evaluated per update batch through anchored
// enumeration: each pattern edge takes a turn as the anchor at levels 0/1
// and a seeded recursion extends the partial embedding one level at a time.
// The behavior of that recursion through level d is fully determined by the
// anchored pattern's prefix of size d — the labels of its first d vertices
// and the adjacency among them — so two anchored plans whose prefixes agree
// can share the enumeration of those levels and fan out only where they
// diverge.
//
// The trie materializes exactly that factorization. A node at depth d
// extends its parent's (d-1)-vertex prefix by one vertex, keyed by the new
// vertex's adjacency bitmask into the prefix positions plus its exact label.
// A root-to-node path of length k therefore *is* a k-vertex anchored
// pattern; a TrieTerminal attached to the node marks "an anchored plan of
// some registered pattern group ends here" and carries the permutation back
// to the group's representative vertex order. Nodes may hold terminals and
// children at once (a triangle is a shared prefix of every anchored
// 4-clique plan).
//
// The trie stores plans, not state: one walk per (delta edge, orientation)
// extends shared prefixes once and credits every terminal it completes (see
// mqo/evaluator.hpp). Exactness argument: for one anchor {a, b} of pattern
// P and data edge {u, v}, the per-pattern loop's two seeded runs count the
// injective embeddings of P that map {a, b} onto {u, v} — a quantity
// independent of the anchor's orientation and of the suffix enumeration
// order. anchored_path() may pick a different deterministic order than the
// per-pattern planner, yet both walks count the same set, so summed deltas
// agree bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pattern/pattern.hpp"

namespace stm::mqo {

/// One anchored plan ending at a trie node: the plan of pattern-group
/// `group` whose anchored vertex order is the node's root path. `perm[i]`
/// is the group-representative vertex matched at trie position i — the
/// inverse relabeling applied when a completed walk emits an embedding.
struct TrieTerminal {
  std::uint32_t group = 0;
  std::array<std::uint8_t, kMaxPatternSize> perm{};
};

/// One prefix-extension step: the new vertex's adjacency into the existing
/// prefix positions (bit j = edge to position j) and its exact label (-1
/// when the pattern is unlabeled — matches any data label).
struct TrieStep {
  std::uint8_t adj_mask = 0;
  std::int16_t label = -1;

  bool operator==(const TrieStep&) const = default;
};

struct TrieNode {
  /// Number of prefix vertices including this node's (root = 0).
  std::uint8_t depth = 0;
  TrieStep step;
  TrieNode* parent = nullptr;
  std::vector<std::unique_ptr<TrieNode>> children;
  std::vector<TrieTerminal> terminals;
};

/// The deterministic anchored vertex order of pattern `p` with anchor edge
/// {a, b}: positions 0/1 take the anchor (orientation chosen to
/// lexicographically minimize the step sequence, so isomorphic anchored
/// prefixes collide as often as possible), the suffix follows a
/// max-connectivity greedy with (mask, label, vertex-id) tie-breaks. A pure
/// function of (p, a, b); the unit of prefix sharing.
struct AnchoredPath {
  /// steps[i] keys the trie node at depth i+1 (position i).
  std::vector<TrieStep> steps;
  /// perm[i] = pattern vertex placed at position i.
  std::array<std::uint8_t, kMaxPatternSize> perm{};
};

/// Throws check_error unless p is connected with >= 2 vertices and (a, b)
/// is an edge of p.
AnchoredPath anchored_path(const Pattern& p, std::size_t a, std::size_t b);

struct TrieStats {
  std::size_t nodes = 0;      // excluding the root
  std::size_t terminals = 0;
  std::size_t max_depth = 0;
  /// Sum of terminal depths: the node count a trie with no sharing at all
  /// (one private chain per anchored plan) would need.
  std::uint64_t plan_positions = 0;
  /// 1 - nodes / plan_positions (0 for an empty trie): the fraction of
  /// per-plan enumeration levels served by a shared prefix.
  double shared_prefix_ratio = 0.0;
};

class PlanTrie {
 public:
  PlanTrie();

  /// Inserts `path`, reusing every existing prefix node, and attaches a
  /// terminal for `group` at the final node. Returns that node.
  TrieNode* insert(const AnchoredPath& path, std::uint32_t group);

  /// Detaches every terminal of `group` from `node` and prunes ancestors
  /// left with no terminals and no children. `node` must have been returned
  /// by insert() on this trie (and not pruned since).
  void remove_terminals(TrieNode* node, std::uint32_t group);

  const TrieNode& root() const { return *root_; }
  bool empty() const { return root_->children.empty(); }

  TrieStats stats() const;

  /// Indented human-readable dump (one line per node: depth, step key,
  /// terminal count, child count); backs tools/mqo_info.
  std::string describe() const;

 private:
  std::unique_ptr<TrieNode> root_;
};

}  // namespace stm::mqo
