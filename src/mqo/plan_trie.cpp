#include "mqo/plan_trie.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <tuple>

#include "util/check.hpp"

namespace stm::mqo {
namespace {

// Step sequence of `p` anchored at oriented pair (first, second): positions
// 0/1 are fixed, the suffix is the max-connectivity greedy. Deterministic
// given the orientation.
AnchoredPath oriented_path(const Pattern& p, std::size_t first,
                           std::size_t second) {
  const std::size_t n = p.size();
  AnchoredPath out;
  out.steps.reserve(n);
  std::array<bool, kMaxPatternSize> placed{};
  std::array<std::size_t, kMaxPatternSize> position{};  // pattern vertex -> pos

  auto place = [&](std::size_t v) {
    const std::size_t pos = out.steps.size();
    std::uint8_t mask = 0;
    for (std::size_t j = 0; j < pos; ++j) {
      if (p.has_edge(v, out.perm[j])) mask |= static_cast<std::uint8_t>(1u << j);
    }
    out.steps.push_back(TrieStep{
        mask, p.is_labeled() ? static_cast<std::int16_t>(p.label(v))
                             : static_cast<std::int16_t>(-1)});
    out.perm[pos] = static_cast<std::uint8_t>(v);
    position[v] = pos;
    placed[v] = true;
  };

  place(first);
  place(second);
  while (out.steps.size() < n) {
    // Next vertex: most edges into the prefix, then the lexicographically
    // smallest (mask, label) key, then the smallest vertex id — the same
    // comparison for every pattern, so isomorphic prefixes order alike.
    std::size_t best = n;
    int best_pop = -1;
    std::uint8_t best_mask = 0;
    std::int16_t best_label = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (placed[v]) continue;
      std::uint8_t mask = 0;
      for (std::size_t j = 0; j < out.steps.size(); ++j) {
        if (p.has_edge(v, out.perm[j])) {
          mask |= static_cast<std::uint8_t>(1u << j);
        }
      }
      const int pop = std::popcount(mask);
      const std::int16_t label = p.is_labeled()
                                     ? static_cast<std::int16_t>(p.label(v))
                                     : static_cast<std::int16_t>(-1);
      const bool better =
          best == n || pop > best_pop ||
          (pop == best_pop &&
           std::tie(mask, label, v) < std::tie(best_mask, best_label, best));
      if (better) {
        best = v;
        best_pop = pop;
        best_mask = mask;
        best_label = label;
      }
    }
    STM_CHECK_MSG(best_pop > 0, "anchored_path requires a connected pattern");
    place(best);
  }
  return out;
}

bool step_seq_less(const std::vector<TrieStep>& a,
                   const std::vector<TrieStep>& b) {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const TrieStep& x, const TrieStep& y) {
        return std::tie(x.adj_mask, x.label) < std::tie(y.adj_mask, y.label);
      });
}

void collect_stats(const TrieNode& node, std::size_t depth, TrieStats* out) {
  for (const auto& child : node.children) {
    out->nodes += 1;
    out->max_depth = std::max(out->max_depth, depth + 1);
    out->terminals += child->terminals.size();
    out->plan_positions +=
        static_cast<std::uint64_t>(child->terminals.size()) * (depth + 1);
    collect_stats(*child, depth + 1, out);
  }
}

void describe_node(const TrieNode& node, std::size_t depth,
                   std::ostringstream* out) {
  for (const auto& child : node.children) {
    for (std::size_t i = 0; i < depth; ++i) (*out) << "  ";
    (*out) << "pos " << depth << " mask=";
    for (std::size_t j = depth; j-- > 0;) {
      (*out) << (((child->step.adj_mask >> j) & 1u) ? '1' : '0');
    }
    if (depth == 0) (*out) << '-';
    if (child->step.label >= 0) (*out) << " label=" << child->step.label;
    if (!child->terminals.empty()) {
      (*out) << " terminals=" << child->terminals.size();
    }
    (*out) << '\n';
    describe_node(*child, depth + 1, out);
  }
}

}  // namespace

AnchoredPath anchored_path(const Pattern& p, std::size_t a, std::size_t b) {
  STM_CHECK_MSG(p.size() >= 2, "anchored_path requires >= 2 vertices");
  STM_CHECK_MSG(p.is_connected(), "anchored_path requires a connected pattern");
  STM_CHECK_MSG(a < p.size() && b < p.size() && p.has_edge(a, b),
                "anchor must be an edge of the pattern");
  AnchoredPath ab = oriented_path(p, a, b);
  AnchoredPath ba = oriented_path(p, b, a);
  return step_seq_less(ba.steps, ab.steps) ? ba : ab;
}

PlanTrie::PlanTrie() : root_(std::make_unique<TrieNode>()) {}

TrieNode* PlanTrie::insert(const AnchoredPath& path, std::uint32_t group) {
  STM_CHECK(!path.steps.empty());
  TrieNode* node = root_.get();
  for (const TrieStep& step : path.steps) {
    TrieNode* next = nullptr;
    for (const auto& child : node->children) {
      if (child->step == step) {
        next = child.get();
        break;
      }
    }
    if (next == nullptr) {
      auto child = std::make_unique<TrieNode>();
      child->depth = static_cast<std::uint8_t>(node->depth + 1);
      child->step = step;
      child->parent = node;
      next = child.get();
      node->children.push_back(std::move(child));
    }
    node = next;
  }
  node->terminals.push_back(TrieTerminal{group, path.perm});
  return node;
}

void PlanTrie::remove_terminals(TrieNode* node, std::uint32_t group) {
  STM_CHECK(node != nullptr && node != root_.get());
  std::erase_if(node->terminals,
                [group](const TrieTerminal& t) { return t.group == group; });
  while (node != root_.get() && node->terminals.empty() &&
         node->children.empty()) {
    TrieNode* parent = node->parent;
    std::erase_if(parent->children, [node](const std::unique_ptr<TrieNode>& c) {
      return c.get() == node;
    });
    node = parent;
  }
}

TrieStats PlanTrie::stats() const {
  TrieStats out;
  collect_stats(*root_, 0, &out);
  if (out.plan_positions > 0) {
    out.shared_prefix_ratio =
        1.0 - static_cast<double>(out.nodes) /
                  static_cast<double>(out.plan_positions);
  }
  return out;
}

std::string PlanTrie::describe() const {
  std::ostringstream out;
  const TrieStats s = stats();
  out << "plan trie: " << s.nodes << " nodes, " << s.terminals
      << " terminals, max depth " << s.max_depth << ", "
      << s.plan_positions << " plan positions, shared-prefix ratio "
      << s.shared_prefix_ratio << '\n';
  describe_node(*root_, 0, &out);
  return out.str();
}

}  // namespace stm::mqo
