#include "mqo/evaluator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <span>

#include "util/check.hpp"

namespace stm::mqo {
namespace {

/// One trie walk over one graph view. Holds per-depth candidate buffers —
/// children of a node are explored sequentially and deeper recursion only
/// touches deeper buffers (the RecExec idiom), so nothing reallocates
/// underneath an active iteration.
class Walker {
 public:
  Walker(const PatternIndex& index, const simd::Kernels& simd, GraphView g,
         int sign, EvalResult* out)
      : index_(index), simd_(simd), g_(g), sign_(sign), out_(out) {}

  /// Both orientations of data edge (u, v) through the trie root.
  void walk_edge(VertexId u, VertexId v) {
    const TrieNode& root = index_.trie().root();
    const std::pair<VertexId, VertexId> seeds[2] = {{u, v}, {v, u}};
    for (const auto& [s0, s1] : seeds) {
      ++out_->seed_walks;
      for (const auto& first : root.children) {
        if (!label_match(first->step.label, s0)) continue;
        matched_[0] = s0;
        ++out_->node_visits;
        for (const auto& second : first->children) {
          // Depth-2 steps are always mask 0b1 (the anchor edge); only the
          // label can prune here.
          if (!label_match(second->step.label, s1)) continue;
          matched_[1] = s1;
          ++out_->node_visits;
          credit(*second);
          if (!second->children.empty()) descend(*second, 2);
        }
      }
    }
  }

 private:
  bool label_match(std::int16_t label, VertexId v) const {
    // A labeled step on an unlabeled graph matches nothing (the session
    // rejects such registrations at baseline enumeration; this keeps the
    // standalone index well-defined).
    return label < 0 || (g_.is_labeled() && g_.label(v) == label);
  }

  bool injective(std::size_t depth, VertexId v) const {
    for (std::size_t j = 0; j < depth; ++j) {
      if (matched_[j] == v) return false;
    }
    return true;
  }

  /// Credits every anchored plan completing at `node` with the current
  /// partial embedding matched_[0 .. node.depth).
  void credit(const TrieNode& node) {
    for (const TrieTerminal& t : node.terminals) {
      GroupDelta& gd = out_->groups[t.group];
      gd.embeddings += sign_;
      if (!index_.group_collects(t.group)) continue;
      Embedding rep_order(node.depth);
      for (std::size_t i = 0; i < node.depth; ++i) {
        rep_order[t.perm[i]] = matched_[i];
      }
      (sign_ > 0 ? gd.added : gd.retracted).push_back(std::move(rep_order));
    }
  }

  /// Candidates for position `depth`: the intersection of the prefix
  /// neighborhoods selected by `mask`, materialized into cands_[depth].
  /// Label/injectivity are checked per candidate by the caller.
  const std::vector<VertexId>& candidates(std::uint8_t mask,
                                          std::size_t depth) {
    std::array<std::span<const VertexId>, kMaxPatternSize> lists;
    std::size_t count = 0;
    for (std::size_t j = 0; j < depth; ++j) {
      if ((mask >> j) & 1u) lists[count++] = g_.neighbors(matched_[j]);
    }
    STM_CHECK(count >= 1);  // anchored orders are connected
    std::sort(lists.begin(), lists.begin() + static_cast<std::ptrdiff_t>(count),
              [](const auto& a, const auto& b) { return a.size() < b.size(); });
    auto& out = cands_[depth];
    if (count == 1) {
      out.assign(lists[0].begin(), lists[0].end());
      return out;
    }
    intersect_into(lists[0], lists[1], &out);
    for (std::size_t i = 2; i < count; ++i) {
      intersect_into({out.data(), out.size()}, lists[i], &scratch_);
      out.swap(scratch_);
    }
    return out;
  }

  void intersect_into(std::span<const VertexId> a, std::span<const VertexId> b,
                      std::vector<VertexId>* out) {
    if (a.size() > b.size()) std::swap(a, b);
    out->resize(std::min(a.size(), b.size()) + simd::kSimdOutSlack);
    const std::size_t n =
        (a.size() * simd::kGallopSkewRatio <= b.size())
            ? simd_.gallop_intersect(a.data(), a.size(), b.data(), b.size(),
                                     out->data())
            : simd_.intersect(a.data(), a.size(), b.data(), b.size(),
                              out->data());
    out->resize(n);
  }

  void descend(const TrieNode& node, std::size_t depth) {
    for (const auto& child : node.children) {
      const std::vector<VertexId>& c = candidates(child->step.adj_mask, depth);
      const bool leaf = child->children.empty();
      const bool collecting = leaf && !child->terminals.empty() &&
                              any_collecting(*child);
      if (leaf && !collecting) {
        // Leaf fast path: terminals only — tally the valid candidates
        // without per-vertex recursion or embedding materialization.
        std::int64_t valid = 0;
        for (const VertexId v : c) {
          if (!label_match(child->step.label, v) || !injective(depth, v)) {
            continue;
          }
          ++valid;
        }
        out_->node_visits += static_cast<std::uint64_t>(valid);
        for (const TrieTerminal& t : child->terminals) {
          out_->groups[t.group].embeddings += sign_ * valid;
        }
        continue;
      }
      for (std::size_t idx = 0; idx < c.size(); ++idx) {
        const VertexId v = c[idx];
        if (!label_match(child->step.label, v) || !injective(depth, v)) {
          continue;
        }
        matched_[depth] = v;
        ++out_->node_visits;
        credit(*child);
        if (!leaf) descend(*child, depth + 1);
      }
    }
  }

  bool any_collecting(const TrieNode& node) const {
    return std::any_of(node.terminals.begin(), node.terminals.end(),
                       [&](const TrieTerminal& t) {
                         return index_.group_collects(t.group);
                       });
  }

  const PatternIndex& index_;
  const simd::Kernels& simd_;
  const GraphView g_;
  const int sign_;
  EvalResult* out_;
  std::array<VertexId, kMaxPatternSize> matched_{};
  std::array<std::vector<VertexId>, kMaxPatternSize + 1> cands_;
  std::vector<VertexId> scratch_;
};

}  // namespace

MultiQueryEvaluator::MultiQueryEvaluator(const PatternIndex& index)
    : index_(index),
      simd_(simd::kernels_for_choice(simd::IsaChoice::kAuto)) {}

void MultiQueryEvaluator::accumulate(GraphView g, VertexId u, VertexId v,
                                     int sign, EvalResult* out) const {
  STM_CHECK(out != nullptr && out->groups.size() >= index_.num_group_slots());
  STM_CHECK_MSG(g.has_edge(u, v), "delta edge must be present in the view");
  Walker walker(index_, simd_, g, sign, out);
  walker.walk_edge(u, v);
}

EvalResult MultiQueryEvaluator::evaluate(
    const std::shared_ptr<const GraphSnapshot>& from,
    const DeltaEdges& applied) const {
  STM_CHECK(from != nullptr);
  EvalResult result;
  result.groups.resize(index_.num_group_slots());
  result.delta_edges = applied.size();
  if (applied.empty() || index_.empty()) return result;

  // The per-pattern inclusion–exclusion, verbatim (see
  // IncrementalMatcher::count_delta): walk the inserted edges over
  // G_common + {d_1..d_i} crediting +1, the deleted edges over their own
  // prefix overlays crediting -1. Each affected embedding of each group is
  // credited exactly once, at the largest-index delta edge it contains.
  {
    DeltaOverlay overlay(from);
    for (const auto& [u, v] : applied.deleted) overlay.remove_edge(u, v);
    for (const auto& [u, v] : applied.inserted) {
      overlay.add_edge(u, v);
      accumulate(overlay.view(), u, v, +1, &result);
    }
  }
  {
    DeltaOverlay overlay(from);
    for (const auto& [u, v] : applied.deleted) overlay.remove_edge(u, v);
    for (const auto& [u, v] : applied.deleted) {
      overlay.add_edge(u, v);
      accumulate(overlay.view(), u, v, -1, &result);
    }
  }
  return result;
}

}  // namespace stm::mqo
