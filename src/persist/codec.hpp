// Binary codec primitives for the durability layer (DESIGN.md §13).
//
// Both the write-ahead log and the checkpoint files are sequences of
// explicitly little-endian scalars — no struct dumps, no host-endianness
// leaks — framed as `u32 length | u32 crc32(payload) | payload`. The reader
// side is fully bounds-checked: a truncated or garbled file surfaces as a
// check_error (or a failed crc) at the exact offset, never as UB, which is
// what lets recovery treat "torn tail" as an expected, recoverable state.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace stm::persist {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) over `data`.
/// Matches zlib's crc32() so external tooling can cross-check frames.
std::uint32_t crc32(std::string_view data);

/// Appends little-endian scalars and length-prefixed strings to a buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  /// Length-prefixed (u32) byte string.
  void str(std::string_view s) {
    STM_CHECK_MSG(s.size() <= UINT32_MAX, "string too large to serialize");
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a byte buffer; every overrun throws
/// check_error instead of reading past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    STM_CHECK_MSG(pos_ < data_.size(), "serialized payload truncated");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    STM_CHECK_MSG(len <= data_.size() - pos_, "serialized string truncated");
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace stm::persist
