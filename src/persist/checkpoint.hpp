// Durable checkpoints of a GraphSession (DESIGN.md §13).
//
// A checkpoint is one self-contained file: the compacted CSR of the current
// graph version, the epoch it represents, the last WAL LSN it covers, and
// the session manifest (standing queries with their cumulative counts, the
// next standing id). Installation is atomic: the bytes are written to a
// temp file, fsynced, renamed into place, and the directory entry fsynced —
// a crash at any point leaves either the previous checkpoint set or the
// previous set plus one complete new file, never a half-written one that
// would be mistaken for valid (the whole payload is crc-framed, so a torn
// rename target is detected and skipped at load).
//
// The store keeps the newest two checkpoints: if the newest fails its crc
// (torn by a crashed writer that somehow completed the rename, or by disk
// corruption), load falls back to the previous one, and the WAL — which is
// only reset after a successful install — still carries every record the
// older checkpoint misses.
//
// FaultSite::kCheckpointWrite chaos: an injected fault garbles the temp
// file's bytes; the writer deletes it and retries, failing closed (no new
// checkpoint, previous set untouched, WAL intact) on exhaustion.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "graph/graph.hpp"
#include "persist/wal.hpp"

namespace stm::persist {

inline constexpr char kCheckpointMagic[] = "STMCKPT1";
inline constexpr std::size_t kCheckpointMagicSize = 8;

struct CheckpointData {
  /// Monotone checkpoint sequence number (also the filename key).
  std::uint64_t seq = 0;
  /// Graph epoch of `graph`.
  std::uint64_t epoch = 0;
  /// Every WAL record with lsn <= last_lsn is folded into this checkpoint;
  /// recovery replays only newer records (covers a crash between the
  /// checkpoint rename and the WAL reset).
  std::uint64_t last_lsn = 0;
  std::uint64_t next_standing_id = 1;
  /// Compacted CSR of the checkpointed version (labels included).
  Graph graph;
  /// Serialize `graph` delta/varint-compressed (storage encoding) instead of
  /// raw CSR. Decode is format-tagged, so readers accept either form;
  /// recovery is bit-identical both ways.
  bool compressed = false;
  /// Standing-query manifest with cumulative counts — restored without
  /// re-enumeration.
  std::vector<StandingEntry> standing;
};

std::string encode_checkpoint(const CheckpointData& data);
/// Throws check_error on a torn or garbled file.
CheckpointData decode_checkpoint(std::string_view bytes);

struct CheckpointLoadResult {
  std::optional<CheckpointData> data;
  /// Newer checkpoint files skipped because they failed validation.
  std::uint64_t skipped_corrupt = 0;
};

/// Filesystem backend for checkpoint files in one directory.
class CheckpointStore {
 public:
  /// `injector` (nullable) drives FaultSite::kCheckpointWrite with
  /// `max_attempts` tries per install.
  CheckpointStore(std::string dir, bool fsync, FaultInjector* injector,
                  std::uint32_t max_attempts);

  /// Atomically installs `data` (temp + fsync + rename + dir fsync) and
  /// prunes all but the newest two checkpoints. Throws FaultInjectedError
  /// when the chaos budget is exhausted; the previous set is untouched.
  void write(const CheckpointData& data);

  /// Loads the newest checkpoint that validates, skipping corrupt ones.
  CheckpointLoadResult load_newest() const;

  /// Checkpoint sequence numbers present (sorted ascending), valid or not.
  std::vector<std::uint64_t> list() const;

  std::string path_for(std::uint64_t seq) const;
  const std::string& dir() const { return dir_; }
  std::uint64_t faults_injected() const { return faults_injected_; }

 private:
  std::string dir_;
  bool fsync_ = true;
  FaultInjector* injector_ = nullptr;
  std::uint32_t max_attempts_ = 1;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace stm::persist
