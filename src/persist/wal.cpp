#include "persist/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "persist/codec.hpp"
#include "util/check.hpp"

namespace stm::persist {

namespace {

constexpr std::size_t kFrameHeaderSize = 8;  // u32 len + u32 crc

void encode_edges(BinaryWriter& w,
                  const std::vector<std::pair<VertexId, VertexId>>& edges) {
  w.u32(static_cast<std::uint32_t>(edges.size()));
  for (const auto& [u, v] : edges) {
    w.u32(u);
    w.u32(v);
  }
}

std::vector<std::pair<VertexId, VertexId>> decode_edges(BinaryReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const VertexId u = r.u32();
    const VertexId v = r.u32();
    edges.emplace_back(u, v);
  }
  return edges;
}

void encode_standing(BinaryWriter& w, const StandingEntry& e) {
  w.u64(e.id);
  w.str(e.pattern);
  w.u8(static_cast<std::uint8_t>(e.plan.induced));
  w.u8(e.plan.code_motion ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(e.plan.count_mode));
  w.u8(static_cast<std::uint8_t>(e.engine));
  w.u64(e.count);
  w.u64(e.epoch);
  w.u64(e.batches);
  w.u64(std::bit_cast<std::uint64_t>(e.full_ms));
}

StandingEntry decode_standing(BinaryReader& r) {
  StandingEntry e;
  e.id = r.u64();
  e.pattern = r.str();
  const std::uint8_t induced = r.u8();
  STM_CHECK_MSG(induced <= 1, "corrupt standing entry: bad induced mode");
  e.plan.induced = static_cast<Induced>(induced);
  e.plan.code_motion = r.u8() != 0;
  const std::uint8_t mode = r.u8();
  STM_CHECK_MSG(mode <= 1, "corrupt standing entry: bad count mode");
  e.plan.count_mode = static_cast<CountMode>(mode);
  const std::uint8_t engine = r.u8();
  STM_CHECK_MSG(engine <= 1, "corrupt standing entry: bad delta engine");
  e.engine = static_cast<DeltaEngine>(engine);
  e.count = r.u64();
  e.epoch = r.u64();
  e.batches = r.u64();
  e.full_ms = std::bit_cast<double>(r.u64());
  return e;
}

/// One frame: length + crc + payload.
std::string frame_payload(const std::string& payload) {
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  std::string out = w.take();
  out += payload;
  return out;
}

void write_all(int fd, const char* data, std::size_t n, std::uint64_t offset,
               const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, data, n, static_cast<off_t>(offset));
    STM_CHECK_MSG(w > 0, "WAL write to " << path
                                         << " failed: " << std::strerror(errno));
    data += w;
    n -= static_cast<std::size_t>(w);
    offset += static_cast<std::uint64_t>(w);
  }
}

}  // namespace

const char* to_string(WalRecordType type) {
  switch (type) {
    case WalRecordType::kUpdateBatch: return "update_batch";
    case WalRecordType::kRegisterStanding: return "register_standing";
    case WalRecordType::kUnregisterStanding: return "unregister_standing";
  }
  return "unknown";
}

std::string encode_record(const WalRecord& rec) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(rec.type));
  w.u64(rec.lsn);
  w.u64(rec.epoch);
  switch (rec.type) {
    case WalRecordType::kUpdateBatch:
      encode_edges(w, rec.delta.inserted);
      encode_edges(w, rec.delta.deleted);
      break;
    case WalRecordType::kRegisterStanding:
      encode_standing(w, rec.standing);
      break;
    case WalRecordType::kUnregisterStanding:
      w.u64(rec.standing_id);
      break;
  }
  return w.take();
}

WalRecord decode_record(std::string_view payload) {
  BinaryReader r(payload);
  WalRecord rec;
  const std::uint8_t type = r.u8();
  STM_CHECK_MSG(type >= 1 && type <= 3, "corrupt WAL record: unknown type "
                                            << static_cast<int>(type));
  rec.type = static_cast<WalRecordType>(type);
  rec.lsn = r.u64();
  rec.epoch = r.u64();
  switch (rec.type) {
    case WalRecordType::kUpdateBatch:
      rec.delta.inserted = decode_edges(r);
      rec.delta.deleted = decode_edges(r);
      break;
    case WalRecordType::kRegisterStanding:
      rec.standing = decode_standing(r);
      break;
    case WalRecordType::kUnregisterStanding:
      rec.standing_id = r.u64();
      break;
  }
  STM_CHECK_MSG(r.done(), "corrupt WAL record: " << r.remaining()
                                                 << " trailing bytes");
  return rec;
}

WalReadResult read_wal(const std::string& path) {
  WalReadResult out;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return out;  // no log yet: empty
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.empty()) return out;  // created but never written: empty

  STM_CHECK_MSG(data.size() >= kWalMagicSize &&
                    data.compare(0, kWalMagicSize, kWalMagic) == 0,
                "not a WAL file (bad magic): " << path);
  std::size_t pos = kWalMagicSize;
  out.valid_bytes = pos;
  std::uint64_t prev_lsn = 0;
  while (pos + kFrameHeaderSize <= data.size()) {
    BinaryReader hdr(std::string_view(data).substr(pos, kFrameHeaderSize));
    const std::uint32_t len = hdr.u32();
    const std::uint32_t crc = hdr.u32();
    if (pos + kFrameHeaderSize + len > data.size()) break;  // torn: short
    const std::string_view payload =
        std::string_view(data).substr(pos + kFrameHeaderSize, len);
    if (crc32(payload) != crc) break;  // torn or garbled frame
    WalRecord rec;
    try {
      rec = decode_record(payload);
    } catch (const check_error&) {
      break;  // crc collision on garbage: still a torn tail, not fatal
    }
    if (rec.lsn <= prev_lsn) break;  // stale bytes past a reset boundary
    prev_lsn = rec.lsn;
    rec.file_offset = pos;
    rec.frame_size = kFrameHeaderSize + len;
    out.records.push_back(std::move(rec));
    pos += kFrameHeaderSize + len;
    out.valid_bytes = pos;
  }
  out.torn_tail = out.valid_bytes < data.size();
  out.discarded_bytes = data.size() - out.valid_bytes;
  out.next_lsn = prev_lsn + 1;
  return out;
}

WalWriter::WalWriter(std::string path, std::uint64_t next_lsn, bool fsync,
                     std::uint64_t truncate_to, FaultInjector* injector,
                     std::uint32_t max_attempts)
    : path_(std::move(path)),
      next_lsn_(next_lsn),
      fsync_(fsync),
      injector_(injector),
      max_attempts_(std::max<std::uint32_t>(1, max_attempts)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  STM_CHECK_MSG(fd_ >= 0,
                "cannot open WAL " << path_ << ": " << std::strerror(errno));
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  STM_CHECK(end >= 0);
  size_ = static_cast<std::uint64_t>(end);
  if (truncate_to > 0 && truncate_to < size_) {
    // Physically discard the torn tail recovery identified, so the next
    // append cannot resurrect stale bytes behind a new frame header.
    STM_CHECK(::ftruncate(fd_, static_cast<off_t>(truncate_to)) == 0);
    size_ = truncate_to;
  }
  if (size_ == 0) {
    write_all(fd_, kWalMagic, kWalMagicSize, 0, path_);
    size_ = kWalMagicSize;
  }
  STM_CHECK_MSG(size_ >= kWalMagicSize, "WAL " << path_ << " shorter than its magic");
  if (fsync_) STM_CHECK(::fsync(fd_) == 0);
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

WalAppendResult WalWriter::append_record(WalRecord rec) {
  rec.lsn = next_lsn_;
  const std::string frame = frame_payload(encode_record(rec));
  const std::uint64_t start = size_;

  WalAppendResult res;
  res.lsn = rec.lsn;
  for (std::uint32_t attempt = 0; attempt < max_attempts_; ++attempt) {
    const std::uint64_t key = (rec.lsn << 8) ^ attempt;
    if (injector_ != nullptr &&
        injector_->should_fail(FaultSite::kWalAppend, key)) {
      // The torn bytes actually hit the file: even attempts land a short
      // prefix (crash mid-write), odd attempts a full frame with a garbled
      // payload byte (sector scribble). Repair = truncate back to the
      // record start, exactly what recovery would do to this tail.
      if (attempt % 2 == 0) {
        write_all(fd_, frame.data(), frame.size() / 2, start, path_);
      } else {
        std::string torn = frame;
        torn[torn.size() - 1] = static_cast<char>(torn.back() ^ 0x5A);
        write_all(fd_, torn.data(), torn.size(), start, path_);
      }
      ++res.faults;
      ++faults_injected_;
      STM_CHECK(::ftruncate(fd_, static_cast<off_t>(start)) == 0);
      if (fsync_) STM_CHECK(::fsync(fd_) == 0);
      continue;
    }
    write_all(fd_, frame.data(), frame.size(), start, path_);
    if (fsync_) STM_CHECK(::fsync(fd_) == 0);
    size_ = start + frame.size();
    ++next_lsn_;
    res.bytes = frame.size();
    appended_bytes_ += frame.size();
    return res;
  }
  // Fail closed: the file is already truncated back to the record start by
  // the last repair, so durable state is exactly the pre-append state and
  // the caller must not acknowledge the mutation.
  throw FaultInjectedError(
      "injected fault: WAL append torn " + std::to_string(max_attempts_) +
      " time(s); record " + std::to_string(rec.lsn) + " not made durable");
}

WalAppendResult WalWriter::append_update(std::uint64_t epoch,
                                         const DeltaEdges& delta) {
  WalRecord rec;
  rec.type = WalRecordType::kUpdateBatch;
  rec.epoch = epoch;
  rec.delta = delta;
  return append_record(std::move(rec));
}

WalAppendResult WalWriter::append_register(const StandingEntry& entry,
                                           std::uint64_t epoch) {
  WalRecord rec;
  rec.type = WalRecordType::kRegisterStanding;
  rec.epoch = epoch;
  rec.standing = entry;
  return append_record(std::move(rec));
}

WalAppendResult WalWriter::append_unregister(std::uint64_t id,
                                             std::uint64_t epoch) {
  WalRecord rec;
  rec.type = WalRecordType::kUnregisterStanding;
  rec.epoch = epoch;
  rec.standing_id = id;
  return append_record(std::move(rec));
}

void WalWriter::reset() {
  STM_CHECK(::ftruncate(fd_, static_cast<off_t>(kWalMagicSize)) == 0);
  size_ = kWalMagicSize;
  if (fsync_) STM_CHECK(::fsync(fd_) == 0);
}

}  // namespace stm::persist
