// Write-ahead log of a persistent GraphSession (DESIGN.md §13).
//
// File layout: an 8-byte magic ("STMWAL1\n") followed by frames of
// `u32 payload_len | u32 crc32(payload) | payload`. Each payload starts with
// a record type byte and a monotone LSN; three record types exist:
//
//   kUpdateBatch        the *effective* (normalized, redundancy-stripped)
//                       delta of one applied batch plus the epoch it
//                       produced — exactly what replay feeds back through
//                       MutableGraph::apply
//   kRegisterStanding   a standing-query registration: id, pattern,
//                       semantics, engine, and the baseline count/epoch the
//                       registration-time full enumeration established
//   kUnregisterStanding a standing-query removal by id
//
// Records are appended and fsynced *before* the corresponding mutation is
// acknowledged (the write-ahead discipline; see GraphSession::do_apply).
// The reader accepts any prefix of frames and stops at the first torn or
// garbled frame — a crash mid-append loses at most the unacknowledged
// record, never an acknowledged one.
//
// The writer carries the FaultSite::kWalAppend chaos hook: an injected
// fault makes the torn bytes actually hit the file, after which the writer
// truncates back to the record start and retries with a fresh decision key,
// failing closed (file restored to its pre-append state) on exhaustion.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "pattern/plan.hpp"

namespace stm::persist {

inline constexpr char kWalMagic[] = "STMWAL1\n";
inline constexpr std::size_t kWalMagicSize = 8;

enum class WalRecordType : std::uint8_t {
  kUpdateBatch = 1,
  kRegisterStanding = 2,
  kUnregisterStanding = 3,
};

const char* to_string(WalRecordType type);

/// Serializable state of one standing query — what a registration record
/// and a checkpoint manifest entry carry. Subscriber callbacks are process
/// state and deliberately absent: a restored query keeps counting but
/// delivers no notifications until the owner re-attaches.
struct StandingEntry {
  std::uint64_t id = 0;
  /// Pattern::to_string() form (Pattern::parse round-trips it).
  std::string pattern;
  PlanOptions plan;
  DeltaEngine engine = DeltaEngine::kHost;
  /// Cumulative count and the epoch it is valid for.
  std::uint64_t count = 0;
  std::uint64_t epoch = 0;
  std::uint64_t batches = 0;
  /// Registration-time full-enumeration wall time (speedup-gauge baseline),
  /// serialized as IEEE-754 bits.
  double full_ms = 0.0;
};

/// One decoded WAL record plus its frame geometry (file_offset/frame_size
/// are derived from the file, not serialized — the kill-matrix tests use
/// them to cut the file at every boundary).
struct WalRecord {
  WalRecordType type = WalRecordType::kUpdateBatch;
  std::uint64_t lsn = 0;
  /// kUpdateBatch: the epoch the batch produced. Register/unregister: the
  /// epoch the mutation happened at.
  std::uint64_t epoch = 0;
  /// kUpdateBatch payload.
  DeltaEdges delta;
  /// kRegisterStanding payload.
  StandingEntry standing;
  /// kUnregisterStanding payload.
  std::uint64_t standing_id = 0;

  std::uint64_t file_offset = 0;  // of the frame's length word
  std::uint64_t frame_size = 0;   // 8-byte header + payload
};

std::string encode_record(const WalRecord& rec);
WalRecord decode_record(std::string_view payload);

struct WalReadResult {
  std::vector<WalRecord> records;
  /// Byte length of the valid prefix (magic + intact frames). The file may
  /// be longer; the excess is a torn tail.
  std::uint64_t valid_bytes = 0;
  std::uint64_t discarded_bytes = 0;
  bool torn_tail = false;
  /// 1 + the last intact record's LSN (1 when the log is empty).
  std::uint64_t next_lsn = 1;
};

/// Reads every intact frame of a WAL file. A missing file reads as an empty
/// log; a bad magic throws check_error (the path is not a WAL); a torn or
/// garbled tail is reported, not thrown.
WalReadResult read_wal(const std::string& path);

/// Outcome of one append.
struct WalAppendResult {
  std::uint64_t lsn = 0;
  /// Durable frame bytes this append added (excludes torn retries).
  std::uint64_t bytes = 0;
  /// kWalAppend faults burned before the frame landed intact.
  std::uint32_t faults = 0;
};

/// Appender over an open WAL file. Single-writer (the session serializes
/// appends under its update lock). Every append is flushed — and fsynced
/// when the config says so — before it returns.
class WalWriter {
 public:
  /// Opens (creating if absent) the WAL at `path`. `truncate_to` > 0 cuts
  /// the file to that length first — recovery passes the valid-prefix
  /// length so a torn tail is physically discarded before new appends.
  /// `next_lsn` seeds the LSN counter. The injector (nullable) drives the
  /// kWalAppend site with `max_attempts` tries per record.
  WalWriter(std::string path, std::uint64_t next_lsn, bool fsync,
            std::uint64_t truncate_to, FaultInjector* injector,
            std::uint32_t max_attempts);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  WalAppendResult append_update(std::uint64_t epoch, const DeltaEdges& delta);
  WalAppendResult append_register(const StandingEntry& entry,
                                  std::uint64_t epoch);
  WalAppendResult append_unregister(std::uint64_t id, std::uint64_t epoch);

  /// Truncates the log back to the bare magic header (after a checkpoint
  /// made every logged record redundant). LSNs keep counting — they are
  /// session-global, not file positions.
  void reset();

  std::uint64_t next_lsn() const { return next_lsn_; }
  std::uint64_t appended_bytes() const { return appended_bytes_; }
  std::uint64_t faults_injected() const { return faults_injected_; }
  const std::string& path() const { return path_; }

 private:
  WalAppendResult append_record(WalRecord rec);

  std::string path_;
  int fd_ = -1;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t size_ = 0;  // current file length (append position)
  bool fsync_ = true;
  FaultInjector* injector_ = nullptr;
  std::uint32_t max_attempts_ = 1;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace stm::persist
