#include "persist/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "persist/codec.hpp"
#include "storage/encoding.hpp"
#include "util/check.hpp"

namespace stm::persist {

namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".stmckpt";
constexpr std::size_t kKeepCheckpoints = 2;

constexpr std::uint8_t kGraphFormatRaw = 0;
constexpr std::uint8_t kGraphFormatCompressed = 1;

void encode_graph(BinaryWriter& w, const Graph& g, bool compressed) {
  w.u8(compressed ? kGraphFormatCompressed : kGraphFormatRaw);
  w.u32(g.num_vertices());
  w.u64(g.num_adjacency_entries());
  if (compressed) {
    // Delta/varint per-vertex lists (storage encoding), back to back; each
    // list self-terminates, so no offset table is serialized.
    w.u32(storage::kDefaultBlockSize);
    std::vector<std::uint8_t> blob;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto nbrs = g.neighbors(v);
      storage::encode_adjacency(nbrs.data(), nbrs.size(),
                                storage::kDefaultBlockSize, blob);
    }
    w.str(std::string_view(reinterpret_cast<const char*>(blob.data()),
                           blob.size()));
  } else {
    for (const EdgeId e : g.row_ptr()) w.u64(e);
    for (const VertexId v : g.col_idx()) w.u32(v);
  }
  w.u8(g.is_labeled() ? 1 : 0);
  if (g.is_labeled())
    for (const Label l : g.labels()) w.u8(l);
}

Graph decode_graph(BinaryReader& r, bool& compressed) {
  const std::uint8_t format = r.u8();
  STM_CHECK_MSG(format <= kGraphFormatCompressed,
                "corrupt checkpoint: unknown graph format "
                    << static_cast<int>(format));
  compressed = format == kGraphFormatCompressed;
  const std::uint32_t n = r.u32();
  const std::uint64_t m = r.u64();
  std::vector<EdgeId> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(n) + 1);
  std::vector<VertexId> col_idx;
  col_idx.reserve(m);
  if (format == kGraphFormatCompressed) {
    const std::uint32_t block_size = r.u32();
    STM_CHECK_MSG(block_size > 0, "corrupt checkpoint: zero block size");
    const std::string blob = r.str();
    const auto* p = reinterpret_cast<const std::uint8_t*>(blob.data());
    const auto* end = p + blob.size();
    row_ptr.push_back(0);
    std::vector<VertexId> list;
    for (std::uint32_t v = 0; v < n; ++v) {
      list.clear();
      storage::ListCursor c(p, end, block_size);
      c.decode_remaining(list);
      p = c.position();
      col_idx.insert(col_idx.end(), list.begin(), list.end());
      row_ptr.push_back(static_cast<EdgeId>(col_idx.size()));
    }
    STM_CHECK_MSG(p == end, "corrupt checkpoint: trailing adjacency bytes");
    STM_CHECK_MSG(col_idx.size() == m,
                  "corrupt checkpoint: adjacency entry count mismatch");
  } else {
    for (std::uint32_t i = 0; i <= n; ++i) row_ptr.push_back(r.u64());
    for (std::uint64_t i = 0; i < m; ++i) col_idx.push_back(r.u32());
  }
  std::vector<Label> labels;
  if (r.u8() != 0) {
    labels.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      labels.push_back(static_cast<Label>(r.u8()));
  }
  // The Graph constructor re-validates the CSR invariants, so a corrupt
  // payload that slipped past the crc still cannot build a broken graph.
  return Graph(std::move(row_ptr), std::move(col_idx), std::move(labels));
}

void fsync_fd(int fd, const std::string& what) {
  STM_CHECK_MSG(::fsync(fd) == 0,
                "fsync of " << what << " failed: " << std::strerror(errno));
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  STM_CHECK_MSG(fd >= 0, "cannot open directory " << dir << " for fsync: "
                                                  << std::strerror(errno));
  fsync_fd(fd, dir);
  ::close(fd);
}

/// seq from "checkpoint-<decimal>.stmckpt", or nullopt for foreign names.
std::optional<std::uint64_t> parse_seq(const std::string& name) {
  const std::size_t prefix = sizeof(kCheckpointPrefix) - 1;
  const std::size_t suffix = sizeof(kCheckpointSuffix) - 1;
  if (name.size() <= prefix + suffix) return std::nullopt;
  if (name.compare(0, prefix, kCheckpointPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix, suffix, kCheckpointSuffix) != 0)
    return std::nullopt;
  std::uint64_t seq = 0;
  for (std::size_t i = prefix; i < name.size() - suffix; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace

std::string encode_checkpoint(const CheckpointData& data) {
  BinaryWriter payload;
  payload.u64(data.seq);
  payload.u64(data.epoch);
  payload.u64(data.last_lsn);
  payload.u64(data.next_standing_id);
  encode_graph(payload, data.graph, data.compressed);
  payload.u32(static_cast<std::uint32_t>(data.standing.size()));
  for (const StandingEntry& e : data.standing) {
    payload.u64(e.id);
    payload.str(e.pattern);
    payload.u8(static_cast<std::uint8_t>(e.plan.induced));
    payload.u8(e.plan.code_motion ? 1 : 0);
    payload.u8(static_cast<std::uint8_t>(e.plan.count_mode));
    payload.u8(static_cast<std::uint8_t>(e.engine));
    payload.u64(e.count);
    payload.u64(e.epoch);
    payload.u64(e.batches);
    payload.u64(std::bit_cast<std::uint64_t>(e.full_ms));
  }
  const std::string body = payload.take();

  BinaryWriter out;
  std::string bytes(kCheckpointMagic, kCheckpointMagicSize);
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.u32(crc32(body));
  bytes += out.take();
  bytes += body;
  return bytes;
}

CheckpointData decode_checkpoint(std::string_view bytes) {
  STM_CHECK_MSG(bytes.size() >= kCheckpointMagicSize + 8 &&
                    bytes.compare(0, kCheckpointMagicSize, kCheckpointMagic,
                                  kCheckpointMagicSize) == 0,
                "not a checkpoint file (bad magic)");
  BinaryReader hdr(bytes.substr(kCheckpointMagicSize, 8));
  const std::uint32_t len = hdr.u32();
  const std::uint32_t crc = hdr.u32();
  STM_CHECK_MSG(bytes.size() == kCheckpointMagicSize + 8 + len,
                "checkpoint truncated: payload claims "
                    << len << " bytes, file has "
                    << bytes.size() - kCheckpointMagicSize - 8);
  const std::string_view body = bytes.substr(kCheckpointMagicSize + 8, len);
  STM_CHECK_MSG(crc32(body) == crc, "checkpoint payload fails its crc");

  BinaryReader r(body);
  CheckpointData data;
  data.seq = r.u64();
  data.epoch = r.u64();
  data.last_lsn = r.u64();
  data.next_standing_id = r.u64();
  data.graph = decode_graph(r, data.compressed);
  const std::uint32_t num_standing = r.u32();
  data.standing.reserve(num_standing);
  for (std::uint32_t i = 0; i < num_standing; ++i) {
    StandingEntry e;
    e.id = r.u64();
    e.pattern = r.str();
    const std::uint8_t induced = r.u8();
    STM_CHECK_MSG(induced <= 1, "corrupt manifest entry: bad induced mode");
    e.plan.induced = static_cast<Induced>(induced);
    e.plan.code_motion = r.u8() != 0;
    const std::uint8_t mode = r.u8();
    STM_CHECK_MSG(mode <= 1, "corrupt manifest entry: bad count mode");
    e.plan.count_mode = static_cast<CountMode>(mode);
    const std::uint8_t engine = r.u8();
    STM_CHECK_MSG(engine <= 1, "corrupt manifest entry: bad delta engine");
    e.engine = static_cast<DeltaEngine>(engine);
    e.count = r.u64();
    e.epoch = r.u64();
    e.batches = r.u64();
    e.full_ms = std::bit_cast<double>(r.u64());
    data.standing.push_back(std::move(e));
  }
  STM_CHECK_MSG(r.done(),
                "corrupt checkpoint: " << r.remaining() << " trailing bytes");
  return data;
}

CheckpointStore::CheckpointStore(std::string dir, bool fsync,
                                 FaultInjector* injector,
                                 std::uint32_t max_attempts)
    : dir_(std::move(dir)),
      fsync_(fsync),
      injector_(injector),
      max_attempts_(std::max<std::uint32_t>(1, max_attempts)) {
  fs::create_directories(dir_);
}

std::string CheckpointStore::path_for(std::uint64_t seq) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%016llu%s", kCheckpointPrefix,
                static_cast<unsigned long long>(seq), kCheckpointSuffix);
  return (fs::path(dir_) / name).string();
}

std::vector<std::uint64_t> CheckpointStore::list() const {
  std::vector<std::uint64_t> seqs;
  if (!fs::exists(dir_)) return seqs;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    if (const auto seq = parse_seq(entry.path().filename().string()))
      seqs.push_back(*seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

void CheckpointStore::write(const CheckpointData& data) {
  const std::string bytes = encode_checkpoint(data);
  const std::string final_path = path_for(data.seq);
  const std::string tmp_path = final_path + ".tmp";

  for (std::uint32_t attempt = 0; attempt < max_attempts_; ++attempt) {
    const std::uint64_t key = (data.seq << 8) ^ attempt;
    const bool fail =
        injector_ != nullptr &&
        injector_->should_fail(FaultSite::kCheckpointWrite, key);

    std::string written = bytes;
    if (fail) {
      // The corruption actually lands in the temp file: garble one payload
      // byte keyed by the attempt so distinct retries tear differently.
      const std::size_t victim =
          kCheckpointMagicSize + 8 + (key % std::max<std::size_t>(1, bytes.size() - kCheckpointMagicSize - 8));
      written[victim] = static_cast<char>(written[victim] ^ 0xA5);
    }

    const int fd =
        ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    STM_CHECK_MSG(fd >= 0, "cannot create checkpoint temp " << tmp_path << ": "
                                                            << std::strerror(errno));
    const char* p = written.data();
    std::size_t left = written.size();
    while (left > 0) {
      const ssize_t w = ::write(fd, p, left);
      STM_CHECK_MSG(w > 0, "checkpoint write to " << tmp_path << " failed: "
                                                  << std::strerror(errno));
      p += w;
      left -= static_cast<std::size_t>(w);
    }
    if (fsync_) fsync_fd(fd, tmp_path);
    ::close(fd);

    // Validate-before-install: re-read and decode the temp file, so a torn
    // write (injected or real) is caught while the previous checkpoint set
    // is still authoritative.
    bool valid = false;
    try {
      std::ifstream in(tmp_path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      decode_checkpoint(buf.str());
      valid = true;
    } catch (const check_error&) {
      valid = false;
    }
    if (!valid) {
      ++faults_injected_;
      fs::remove(tmp_path);
      continue;
    }

    fs::rename(tmp_path, final_path);
    if (fsync_) fsync_dir(dir_);

    // Retention: newest two survive; older files (and stray temps) go.
    std::vector<std::uint64_t> seqs = list();
    if (seqs.size() > kKeepCheckpoints) {
      for (std::size_t i = 0; i + kKeepCheckpoints < seqs.size(); ++i)
        fs::remove(path_for(seqs[i]));
      if (fsync_) fsync_dir(dir_);
    }
    return;
  }
  fs::remove(tmp_path);
  throw FaultInjectedError(
      "injected fault: checkpoint " + std::to_string(data.seq) + " torn " +
      std::to_string(max_attempts_) +
      " time(s); previous checkpoint set left authoritative");
}

CheckpointLoadResult CheckpointStore::load_newest() const {
  CheckpointLoadResult out;
  std::vector<std::uint64_t> seqs = list();
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    try {
      std::ifstream in(path_for(*it), std::ios::binary);
      STM_CHECK(in.is_open());
      std::ostringstream buf;
      buf << in.rdbuf();
      out.data = decode_checkpoint(buf.str());
      return out;
    } catch (const check_error&) {
      // Fall back to the previous checkpoint; the WAL still covers the gap
      // because it is only reset after a successful install.
      ++out.skipped_corrupt;
    }
  }
  return out;
}

}  // namespace stm::persist
