#include "persist/manager.hpp"

#include <algorithm>
#include <filesystem>

#include "util/check.hpp"

namespace stm::persist {

namespace {
constexpr char kWalFileName[] = "wal.stmwal";
}  // namespace

PersistenceManager::PersistenceManager(PersistenceConfig cfg)
    : cfg_(std::move(cfg)),
      injector_(cfg_.fault.enabled()
                    ? std::make_unique<FaultInjector>(cfg_.fault)
                    : nullptr),
      store_(cfg_.dir, cfg_.fsync, injector_.get(),
             cfg_.fault.max_unit_attempts) {
  STM_CHECK_MSG(cfg_.enabled(),
                "PersistenceManager requires a non-empty state directory");
  if (cfg_.fault.enabled()) STM_CHECK(cfg_.fault.max_unit_attempts >= 1);
}

std::string PersistenceManager::wal_path() const {
  return (std::filesystem::path(cfg_.dir) / kWalFileName).string();
}

RecoveredState PersistenceManager::recover() {
  RecoveredState out;

  const CheckpointLoadResult ckpt = store_.load_newest();
  out.report.checkpoints_skipped = ckpt.skipped_corrupt;
  std::uint64_t covered_lsn = 0;
  if (ckpt.data.has_value()) {
    out.report.recovered = true;
    out.report.checkpoint_loaded = true;
    out.report.checkpoint_seq = ckpt.data->seq;
    out.report.checkpoint_epoch = ckpt.data->epoch;
    covered_lsn = ckpt.data->last_lsn;
    next_checkpoint_seq_ = ckpt.data->seq + 1;
    out.checkpoint = std::move(ckpt.data);
  }

  const WalReadResult wal = read_wal(wal_path());
  out.wal_valid_bytes = wal.valid_bytes;
  out.next_lsn = std::max(wal.next_lsn, covered_lsn + 1);
  out.report.wal_torn_tail = wal.torn_tail;
  out.report.wal_discarded_bytes = wal.discarded_bytes;
  for (const WalRecord& rec : wal.records) {
    if (rec.lsn <= covered_lsn) {
      // The checkpoint already folded this record in; the crash happened
      // between its install and the WAL reset.
      ++out.report.skipped_records;
      continue;
    }
    switch (rec.type) {
      case WalRecordType::kUpdateBatch: ++out.report.replayed_batches; break;
      case WalRecordType::kRegisterStanding:
        ++out.report.replayed_registrations;
        break;
      case WalRecordType::kUnregisterStanding:
        ++out.report.replayed_unregistrations;
        break;
    }
    out.tail.push_back(rec);
  }
  if (!wal.records.empty()) out.report.recovered = true;
  return out;
}

void PersistenceManager::open_wal(std::uint64_t next_lsn,
                                  std::uint64_t truncate_to) {
  STM_CHECK_MSG(wal_ == nullptr, "WAL opened twice");
  wal_ = std::make_unique<WalWriter>(wal_path(), next_lsn, cfg_.fsync,
                                     truncate_to, injector_.get(),
                                     cfg_.fault.max_unit_attempts);
}

WalAppendResult PersistenceManager::log_update(std::uint64_t epoch,
                                               const DeltaEdges& delta) {
  STM_CHECK_MSG(wal_ != nullptr, "log_update before open_wal");
  return wal_->append_update(epoch, delta);
}

WalAppendResult PersistenceManager::log_register(const StandingEntry& entry,
                                                 std::uint64_t epoch) {
  STM_CHECK_MSG(wal_ != nullptr, "log_register before open_wal");
  return wal_->append_register(entry, epoch);
}

WalAppendResult PersistenceManager::log_unregister(std::uint64_t id,
                                                   std::uint64_t epoch) {
  STM_CHECK_MSG(wal_ != nullptr, "log_unregister before open_wal");
  return wal_->append_unregister(id, epoch);
}

void PersistenceManager::install_checkpoint(CheckpointData data) {
  STM_CHECK_MSG(wal_ != nullptr, "install_checkpoint before open_wal");
  data.seq = next_checkpoint_seq_;
  data.last_lsn = last_lsn();
  store_.write(data);  // throws on exhausted chaos budget; WAL untouched
  ++next_checkpoint_seq_;
  // Every logged record is now folded into the installed checkpoint; a
  // crash right here (before the reset) is covered by the lsn <= last_lsn
  // skip rule in recover().
  wal_->reset();
}

}  // namespace stm::persist
