// Durability front end of GraphSession (DESIGN.md §13).
//
// One PersistenceManager owns a state directory holding
//
//   wal.stmwal                      the write-ahead log
//   checkpoint-<seq>.stmckpt        durable snapshots (newest two kept)
//
// and coordinates the two: every acknowledged mutation is WAL-logged first
// (log_update / log_register / log_unregister, called from the session's
// write-ahead hooks); install_checkpoint atomically persists a compacted
// snapshot + manifest and then truncates the log back to its header, since
// every record with lsn <= checkpoint.last_lsn is now folded in.
//
// Recovery (`recover`, run before the session accepts traffic) loads the
// newest checkpoint that validates — falling back to the previous one on a
// checksum mismatch — reads the WAL, discards the torn tail, and returns
// the records newer than the checkpoint for the session to replay through
// its normal apply path. The combination is exact: acknowledged mutations
// survive any kill point, unacknowledged ones vanish atomically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "persist/checkpoint.hpp"
#include "persist/wal.hpp"

namespace stm::persist {

struct PersistenceConfig {
  /// State directory (created if missing). Empty disables persistence.
  std::string dir;
  /// fsync WAL appends and checkpoint installs. Turning this off trades
  /// power-loss durability for throughput; process-kill durability (the
  /// acceptance property of the kill-matrix tests) is unaffected because
  /// the page cache survives the process.
  bool fsync = true;
  /// Install a checkpoint automatically after this many applied batches;
  /// 0 = only explicit GraphSession::checkpoint() calls.
  std::uint32_t checkpoint_every_batches = 0;
  /// Serialize checkpoint graphs delta/varint-compressed (storage encoding).
  /// Recovery accepts both formats regardless of this flag.
  bool compressed_checkpoints = false;
  /// Chaos schedule for FaultSite::kWalAppend / kCheckpointWrite.
  FaultConfig fault;

  bool enabled() const { return !dir.empty(); }
};

/// What recovery did (surfaced through GraphSession::recovery_report()).
struct RecoveryReport {
  /// True when a state directory with prior state was found.
  bool recovered = false;
  bool checkpoint_loaded = false;
  std::uint64_t checkpoint_seq = 0;
  std::uint64_t checkpoint_epoch = 0;
  /// Newer checkpoint files skipped for failing validation.
  std::uint64_t checkpoints_skipped = 0;
  std::uint64_t replayed_batches = 0;
  std::uint64_t replayed_registrations = 0;
  std::uint64_t replayed_unregistrations = 0;
  /// WAL records skipped because the checkpoint already covered them
  /// (crash between checkpoint install and WAL reset).
  std::uint64_t skipped_records = 0;
  bool wal_torn_tail = false;
  std::uint64_t wal_discarded_bytes = 0;
  /// Wall time of the whole recovery (load + replay), ms; filled by the
  /// session.
  double recovery_ms = 0.0;
};

/// Prior state handed to the session for replay.
struct RecoveredState {
  std::optional<CheckpointData> checkpoint;
  /// WAL records newer than the checkpoint, in LSN order.
  std::vector<WalRecord> tail;
  RecoveryReport report;
  /// Valid-prefix length of the WAL file (the writer truncates to it).
  std::uint64_t wal_valid_bytes = 0;
  /// First LSN the writer hands out.
  std::uint64_t next_lsn = 1;
};

class PersistenceManager {
 public:
  explicit PersistenceManager(PersistenceConfig cfg);

  /// Loads checkpoint + WAL tail. Call once, before open_wal.
  RecoveredState recover();

  /// Opens the WAL for appending, truncating the torn tail first. Must be
  /// called (with RecoveredState::next_lsn / wal_valid_bytes) before any
  /// log_* call.
  void open_wal(std::uint64_t next_lsn, std::uint64_t truncate_to);

  WalAppendResult log_update(std::uint64_t epoch, const DeltaEdges& delta);
  WalAppendResult log_register(const StandingEntry& entry, std::uint64_t epoch);
  WalAppendResult log_unregister(std::uint64_t id, std::uint64_t epoch);

  /// Atomically installs `data` and truncates the WAL it covers. Throws
  /// FaultInjectedError on an exhausted kCheckpointWrite budget — the WAL
  /// and previous checkpoints still hold everything, so the session keeps
  /// running un-checkpointed.
  void install_checkpoint(CheckpointData data);

  /// LSN of the last durable record (0 when none since the last reset).
  std::uint64_t last_lsn() const {
    return wal_ != nullptr ? wal_->next_lsn() - 1 : 0;
  }
  /// Sequence number the next checkpoint will get.
  std::uint64_t next_checkpoint_seq() const { return next_checkpoint_seq_; }

  std::uint64_t wal_appended_bytes() const {
    return wal_ != nullptr ? wal_->appended_bytes() : 0;
  }
  std::uint64_t faults_injected() const {
    return (wal_ != nullptr ? wal_->faults_injected() : 0) +
           store_.faults_injected();
  }

  const PersistenceConfig& config() const { return cfg_; }
  std::string wal_path() const;

 private:
  PersistenceConfig cfg_;
  std::unique_ptr<FaultInjector> injector_;  // non-movable (atomic counters)
  CheckpointStore store_;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t next_checkpoint_seq_ = 1;
};

}  // namespace stm::persist
