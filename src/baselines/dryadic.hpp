// Dryadic-style CPU baseline (paper's state-of-the-art CPU comparator).
//
// Dryadic runs the nested-loop backtracking of Fig. 1 with loop-invariant
// code motion on a multicore CPU, distributing work statically by edges
// (the first two loop levels combined — paper §III challenge 1). We execute
// the identical algorithm through the shared recursive executor and model
// time as the makespan of the statically partitioned per-edge work on T
// scalar cores.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "pattern/plan.hpp"

namespace stm {

struct DryadicConfig {
  /// Simulated worker threads (paper runs Dryadic with 64).
  std::size_t threads = 64;
  /// Scalar core clock for converting ops to milliseconds (Xeon 6226R).
  double cpu_ghz = 2.9;
  /// Scalar ops retired per cycle: set merges are memory-latency-bound and
  /// 64 threads share two sockets of bandwidth.
  double ops_per_cycle = 0.5;
  /// Loop-invariant code motion (Dryadic has it on; turning it off models
  /// the unoptimized nested loop).
  bool code_motion = true;
  /// Fixed fork/join overhead of the CPU parallel section (microseconds):
  /// thread wake-up plus the final reduction barrier.
  double setup_us = 60.0;
};

struct DryadicResult {
  std::uint64_t count = 0;
  /// Simulated milliseconds: makespan over statically partitioned threads.
  double sim_ms = 0.0;
  std::uint64_t total_ops = 0;
  std::uint64_t makespan_ops = 0;
  /// max thread ops / mean thread ops: the load imbalance the paper blames
  /// static edge distribution for on deep queries.
  double imbalance = 1.0;
};

/// Runs the Dryadic model. `plan_opts.code_motion` is overridden by
/// `cfg.code_motion`.
DryadicResult dryadic_match(const Graph& g, const Pattern& pattern,
                            PlanOptions plan_opts = {},
                            const DryadicConfig& cfg = {});

}  // namespace stm
