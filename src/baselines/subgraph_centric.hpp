// Subgraph-centric GPU baselines: cuTS-style and GSI-style models.
//
// Both systems extend materialized partial-subgraph tables level by level
// (paper §I/§III): every extension step is a kernel launch plus a global
// synchronization, every partial subgraph is written to and re-read from
// global memory, and no loop-invariant code motion is possible because the
// set-operation hierarchy is lost (§VII). cuTS compresses the tables with a
// trie and falls back to a hybrid DFS/BFS chunking under memory pressure;
// GSI stores flat join tables and aborts when a level overflows.
//
// The match counts are exact (the same enumeration semantics, profiled
// through the shared recursive executor on a code-motion-free plan); the
// reported time and memory follow the models above.
#pragma once

#include <array>
#include <cstdint>

#include "graph/graph.hpp"
#include "pattern/plan.hpp"
#include "simt/cost_model.hpp"
#include "simt/device.hpp"

namespace stm {

/// Per-level workload profile of a subgraph-centric execution.
struct LevelProfile {
  std::uint64_t count = 0;
  std::size_t levels = 0;
  std::array<std::uint64_t, kMaxPatternSize> partials{};
  std::array<std::uint64_t, kMaxPatternSize> extension_work{};
};

/// Profiles partial-subgraph counts and extension work per level with a
/// naive (no code motion) plan — the workload a subgraph-centric system
/// materializes.
LevelProfile profile_levels(const Graph& g, const Pattern& pattern,
                            PlanOptions plan_opts);

struct SubgraphCentricResult {
  bool out_of_memory = false;
  std::uint64_t count = 0;  // valid when !out_of_memory
  double sim_ms = 0.0;
  std::uint64_t kernel_launches = 0;
  /// Peak bytes of the partial-subgraph tables.
  std::uint64_t peak_table_bytes = 0;
};

struct CutsConfig {
  DeviceConfig device;
  CostModel cost;
  /// Trie compression ratio of the intermediate tables (cuTS §design).
  double trie_compression = 2.5;
  /// Maximum DFS/BFS-hybrid passes per level; beyond this the run aborts
  /// (memory cannot be bounded further without starving the kernels).
  std::uint32_t max_dfs_chunks = 1 << 16;
  /// Footprint of cuTS's per-graph preprocessing (graph trie + candidate
  /// encoding). Zero disables the check. Like GSI's signature tables, the
  /// constant is scaled up to compensate for the ~1000x smaller proxies so
  /// the memory wall lands on the same dataset (MiCo) as in the paper.
  std::uint64_t preprocess_bytes_per_edge = 0;
};

/// cuTS-style run: edge-induced, unlabeled (the system does not support
/// labels or vertex-induced matching — paper Table II).
SubgraphCentricResult cuts_match(const Graph& g, const Pattern& pattern,
                                 const CutsConfig& cfg = {});

struct GsiConfig {
  DeviceConfig device;
  CostModel cost;
  /// Join-table overhead versus a pure extension scan (GSI scans candidate
  /// tables per edge join).
  double join_factor = 3.0;
  /// Kernels per extension level (GSI filters, joins and compacts in
  /// separate launches).
  std::uint32_t launches_per_level = 3;
  /// Footprint of GSI's per-graph candidate signature/PCSR tables. The paper
  /// graphs are scaled down ~1000x in this reproduction, so the per-edge
  /// constant is scaled *up* so the memory wall lands on the same datasets
  /// (GSI aborts on MiCo and larger — paper Table III). See DESIGN.md §2.
  std::uint64_t signature_bytes_per_edge = 4096;
  std::uint64_t signature_budget_bytes = 12ULL << 20;
};

/// GSI-style run: labeled edge-induced matching with flat BFS tables; aborts
/// with out_of_memory when any level's table exceeds device memory.
SubgraphCentricResult gsi_match(const Graph& g, const Pattern& pattern,
                                const GsiConfig& cfg = {});

}  // namespace stm
