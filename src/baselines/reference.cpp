#include "baselines/reference.hpp"

#include "pattern/matching_order.hpp"
#include "pattern/symmetry.hpp"

namespace stm {

namespace {

struct RefState {
  GraphView g;
  Pattern p;  // reordered
  ReferenceOptions opts;
  std::vector<SymmetryConstraint> constraints;
  std::vector<VertexId> matched;
  std::uint64_t count = 0;
  const std::function<void(const std::vector<VertexId>&)>* emit = nullptr;
  CancelPoller poller;

  bool acceptable(std::size_t level, VertexId v) const {
    if (p.is_labeled() && g.label(v) != p.label(level)) return false;
    for (std::size_t j = 0; j < level; ++j) {
      if (matched[j] == v) return false;  // injectivity
      const bool data_edge = g.has_edge(matched[j], v);
      if (p.has_edge(j, level)) {
        if (!data_edge) return false;
      } else if (opts.induced == Induced::kVertex && data_edge) {
        return false;
      }
    }
    for (const auto& c : constraints) {
      if (c.larger == level && matched[c.smaller] >= v) return false;
    }
    return true;
  }

  void recurse(std::size_t level) {
    if (poller.fired()) return;
    if (level == p.size()) {
      ++count;
      if (emit != nullptr) (*emit)(matched);
      return;
    }
    if (level == 0) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (poller.fired()) return;
        if (!acceptable(0, v)) continue;
        matched.push_back(v);
        recurse(1);
        matched.pop_back();
      }
      return;
    }
    // Candidates must neighbor the smallest earlier pattern neighbor.
    std::size_t base = level;
    for (std::size_t j = 0; j < level; ++j) {
      if (p.has_edge(j, level)) {
        base = j;
        break;
      }
    }
    STM_CHECK(base < level);
    for (VertexId v : g.neighbors(matched[base])) {
      if (!acceptable(level, v)) continue;
      matched.push_back(v);
      recurse(level + 1);
      matched.pop_back();
    }
  }
};

}  // namespace

std::uint64_t reference_enumerate(
    GraphView g, const Pattern& p, const ReferenceOptions& opts,
    const std::function<void(const std::vector<VertexId>&)>& emit,
    const CancelToken* cancel) {
  RefState state{g,  reorder_for_matching(p), opts, {}, {}, 0, nullptr,
                 CancelPoller(cancel)};
  if (opts.count_mode == CountMode::kUniqueSubgraphs)
    state.constraints = symmetry_breaking_constraints(state.p);
  if (emit) state.emit = &emit;
  state.matched.reserve(state.p.size());
  state.recurse(0);
  return state.count;
}

std::uint64_t reference_count(GraphView g, const Pattern& p,
                              const ReferenceOptions& opts,
                              const CancelToken* cancel) {
  return reference_enumerate(g, p, opts, nullptr, cancel);
}

}  // namespace stm
