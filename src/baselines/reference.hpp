// Brute-force reference enumerator — the gold standard for every engine.
//
// A direct recursive implementation of Algorithm 1 that checks each pattern
// edge (and non-edge, for vertex-induced matching) individually against the
// data graph. It shares no candidate-set machinery with the optimized
// engines, so agreement between them is meaningful evidence of correctness.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/cancel.hpp"
#include "graph/view.hpp"
#include "pattern/pattern.hpp"
#include "pattern/plan.hpp"

namespace stm {

struct ReferenceOptions {
  Induced induced = Induced::kEdge;
  CountMode count_mode = CountMode::kEmbeddings;
};

/// Counts matches of `p` in `g`. The pattern may be in any order; it is
/// internally reordered to a connected matching order. A non-null `cancel`
/// token is polled cooperatively; when it fires the partial count so far is
/// returned (callers detect this via the token's status).
std::uint64_t reference_count(GraphView g, const Pattern& p,
                              const ReferenceOptions& opts = {},
                              const CancelToken* cancel = nullptr);

/// Enumerates matches, invoking `emit` with the mapping (query vertex i of
/// the *reordered* pattern -> data vertex). Returns the count.
std::uint64_t reference_enumerate(
    GraphView g, const Pattern& p, const ReferenceOptions& opts,
    const std::function<void(const std::vector<VertexId>&)>& emit,
    const CancelToken* cancel = nullptr);

}  // namespace stm
