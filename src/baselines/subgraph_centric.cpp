#include "baselines/subgraph_centric.hpp"

#include <algorithm>
#include <cmath>

#include "core/recursive.hpp"
#include "pattern/matching_order.hpp"
#include "util/check.hpp"

namespace stm {

LevelProfile profile_levels(const Graph& g, const Pattern& pattern,
                            PlanOptions plan_opts) {
  plan_opts.code_motion = false;  // subgraph-centric systems cannot lift ops
  MatchingPlan plan(reorder_for_matching(pattern), plan_opts);
  RecursiveCounters counters;
  LevelProfile profile;
  profile.count =
      recursive_count_range(g, plan, 0, g.num_vertices(), &counters);
  profile.levels = plan.size();
  profile.partials = counters.partials;
  profile.extension_work = counters.extension_work;
  return profile;
}

namespace {

/// Warp-parallel cycles for `elements` of binary-search extension work,
/// spread over the whole device (subgraph-centric systems parallelize each
/// BFS level well — that is their one strength).
std::uint64_t device_cycles(const CostModel& cost, std::uint64_t elements,
                            std::uint64_t probe_depth,
                            std::uint32_t total_warps) {
  const std::uint64_t waves = (elements + kWarpWidth - 1) / kWarpWidth;
  const std::uint64_t cycles = waves * (cost.wave_overhead + probe_depth);
  return cycles / std::max<std::uint32_t>(total_warps, 1) + 1;
}

std::uint64_t probe_depth_for(const Graph& g) {
  // Binary search in neighbor lists: depth ~ log2(max degree).
  std::uint64_t depth = 1, cap = 1;
  while (cap < g.max_degree()) {
    cap <<= 1;
    ++depth;
  }
  return depth;
}

}  // namespace

SubgraphCentricResult cuts_match(const Graph& g, const Pattern& pattern,
                                 const CutsConfig& cfg) {
  STM_CHECK_MSG(!pattern.is_labeled(),
                "the cuTS baseline supports unlabeled queries only");
  cfg.device.validate();
  SubgraphCentricResult result;
  // Per-graph preprocessing (graph trie, candidate encoding) must fit
  // before matching starts.
  const std::uint64_t preprocess_bytes =
      g.num_edges() * cfg.preprocess_bytes_per_edge;
  result.peak_table_bytes = preprocess_bytes;
  if (preprocess_bytes > cfg.device.global_mem_bytes) {
    result.out_of_memory = true;
    return result;
  }
  const LevelProfile profile =
      profile_levels(g, pattern, {Induced::kEdge, false,
                                  CountMode::kEmbeddings});
  result.count = profile.count;
  const auto warps = cfg.device.total_warps();
  const auto probe = probe_depth_for(g);
  std::uint64_t cycles = 0;
  for (std::size_t l = 1; l < profile.levels; ++l) {
    // Table of level-l partial subgraphs, trie-compressed.
    const auto rows = profile.partials[l];
    const auto bytes = static_cast<std::uint64_t>(
        static_cast<double>(rows) * static_cast<double>(l + 1) *
        sizeof(VertexId) / cfg.trie_compression);
    result.peak_table_bytes = std::max(result.peak_table_bytes, bytes);
    // Hybrid DFS/BFS chunking: split the level until a chunk fits.
    const auto chunks = std::max<std::uint64_t>(
        1, (bytes + cfg.device.global_mem_bytes - 1) /
               cfg.device.global_mem_bytes);
    if (chunks > cfg.max_dfs_chunks) {
      result.out_of_memory = true;
      result.count = 0;
      return result;
    }
    // One launch + sync per chunk per level; chunked levels re-read their
    // parent tables once per chunk.
    result.kernel_launches += chunks;
    cycles += chunks * cfg.cost.kernel_launch;
    // Extension scans plus a second pass building the compressed trie.
    cycles += device_cycles(cfg.cost, profile.extension_work[l] * 2, probe,
                            warps);
    // Global-memory traffic: write this level's table, re-read it at the
    // next level (and once more per extra chunk).
    const std::uint64_t elements = rows * (l + 1);
    cycles +=
        cfg.cost.global_copy_cycles(elements * (2 + chunks)) / warps + 1;
  }
  result.sim_ms = cfg.cost.to_ms(cycles);
  return result;
}

SubgraphCentricResult gsi_match(const Graph& g, const Pattern& pattern,
                                const GsiConfig& cfg) {
  cfg.device.validate();
  SubgraphCentricResult result;
  // GSI builds per-graph candidate signature tables up front; on graphs
  // whose encoding does not fit its budget the run aborts before matching.
  const std::uint64_t signature_bytes =
      g.num_edges() * cfg.signature_bytes_per_edge;
  result.peak_table_bytes = signature_bytes;
  if (signature_bytes > cfg.signature_budget_bytes) {
    result.out_of_memory = true;
    return result;
  }
  const LevelProfile profile =
      profile_levels(g, pattern, {Induced::kEdge, false,
                                  CountMode::kEmbeddings});
  result.count = profile.count;
  const auto warps = cfg.device.total_warps();
  const auto probe = probe_depth_for(g);
  std::uint64_t cycles = 0;
  for (std::size_t l = 1; l < profile.levels; ++l) {
    const auto rows = profile.partials[l];
    // Flat (uncompressed) BFS tables; GSI has no DFS fallback, so a level
    // that does not fit aborts the run (the paper's '×' entries).
    const auto bytes =
        rows * (static_cast<std::uint64_t>(l) + 1) * sizeof(VertexId);
    result.peak_table_bytes = std::max(result.peak_table_bytes, bytes);
    if (bytes > cfg.device.global_mem_bytes) {
      result.out_of_memory = true;
      result.count = 0;
      return result;
    }
    result.kernel_launches += cfg.launches_per_level;
    cycles += static_cast<std::uint64_t>(cfg.launches_per_level) *
              cfg.cost.kernel_launch;
    cycles += device_cycles(
        cfg.cost,
        static_cast<std::uint64_t>(static_cast<double>(profile.extension_work[l]) *
                                   cfg.join_factor),
        probe, warps);
    const std::uint64_t elements = rows * (l + 1);
    cycles += cfg.cost.global_copy_cycles(elements * 2) / warps + 1;
  }
  result.sim_ms = cfg.cost.to_ms(cycles);
  return result;
}

}  // namespace stm
