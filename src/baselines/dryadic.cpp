#include "baselines/dryadic.hpp"

#include <algorithm>

#include "core/recursive.hpp"
#include "pattern/matching_order.hpp"
#include "util/check.hpp"

namespace stm {

DryadicResult dryadic_match(const Graph& g, const Pattern& pattern,
                            PlanOptions plan_opts, const DryadicConfig& cfg) {
  STM_CHECK(cfg.threads >= 1);
  plan_opts.code_motion = cfg.code_motion;
  MatchingPlan plan(reorder_for_matching(pattern), plan_opts);

  DryadicResult result;
  if (g.num_vertices() == 0) return result;
  if (plan.size() < 3) {
    // Degenerate patterns (a single edge): count directly on one thread.
    RecursiveCounters counters;
    result.count = recursive_count_range(g, plan, 0, g.num_vertices(),
                                         &counters);
    result.total_ops = result.makespan_ops = counters.scalar_ops;
    result.sim_ms = cfg.setup_us / 1e3 +
                    static_cast<double>(counters.scalar_ops) /
                        (cfg.cpu_ghz * cfg.ops_per_cycle * 1e6);
    return result;
  }

  // Static edge distribution: seed (v0, v1) pairs dealt round-robin to
  // threads, then each thread runs its subtrees sequentially.
  const auto seeds = enumerate_seeds(g, plan);
  std::vector<std::uint64_t> thread_ops(cfg.threads, 0);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    RecursiveCounters counters;
    result.count += recursive_count_seed(g, plan, seeds[i].first,
                                         seeds[i].second, &counters);
    // Each seed re-derives its level-0/1 context; charge that prefix cost
    // plus the subtree cost to the owning thread.
    const std::uint64_t ops = counters.scalar_ops;
    thread_ops[i % cfg.threads] += ops;
    result.total_ops += ops;
  }
  result.makespan_ops =
      *std::max_element(thread_ops.begin(), thread_ops.end());
  if (result.makespan_ops > 0) {
    const double mean = static_cast<double>(result.total_ops) /
                        static_cast<double>(cfg.threads);
    result.imbalance =
        mean > 0 ? static_cast<double>(result.makespan_ops) / mean : 1.0;
  }
  result.sim_ms = cfg.setup_us / 1e3 +
                  static_cast<double>(result.makespan_ops) /
                      (cfg.cpu_ghz * cfg.ops_per_cycle * 1e6);
  return result;
}

}  // namespace stm
