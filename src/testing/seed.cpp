#include "testing/seed.hpp"

#include <cstdlib>
#include <string>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm::harness {

std::uint64_t base_seed(std::uint64_t fallback) {
  const char* env = std::getenv("STMATCH_FUZZ_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  const std::string text(env);
  int radix = 10;
  std::size_t start = 0;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    radix = 16;
    start = 2;
  }
  std::uint64_t value = 0;
  STM_CHECK_MSG(start < text.size(), "STMATCH_FUZZ_SEED is empty");
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (radix == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (radix == 16 && c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      STM_CHECK_MSG(false, "STMATCH_FUZZ_SEED '" << text
                                                 << "' is not an integer");
    }
    value = value * static_cast<std::uint64_t>(radix) +
            static_cast<std::uint64_t>(digit);
  }
  return value;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Two splitmix64 steps over a stream-salted state: the golden-ratio
  // increment inside splitmix64 decorrelates adjacent streams.
  std::uint64_t state = base ^ (stream * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(state);
  return splitmix64(state);
}

}  // namespace stm::harness
