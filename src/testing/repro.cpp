#include "testing/repro.hpp"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace stm::harness {

namespace {

constexpr const char* kMagic = "stmatch-repro";
constexpr int kVersion = 1;

void write_edges(std::ostream& os, const char* key,
                 const std::vector<std::pair<VertexId, VertexId>>& edges) {
  for (const auto& [u, v] : edges) os << key << " " << u << " " << v << "\n";
}

/// Tokenizing line reader: skips blank lines and `#` comments, splits each
/// remaining line into whitespace-separated tokens, and remembers the raw
/// line for error messages.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  /// Advances to the next non-empty line. Returns false at end of input.
  bool next() {
    std::string line;
    while (std::getline(in_, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty() || line[0] == '#') continue;
      raw_ = line;
      tokens_.clear();
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens_.push_back(std::move(tok));
      if (!tokens_.empty()) return true;
    }
    return false;
  }

  /// next() that throws instead of returning false.
  void require_next(const char* what) {
    STM_CHECK_MSG(next(), "repro ended early: expected " << what);
  }

  const std::string& raw() const { return raw_; }
  const std::vector<std::string>& tokens() const { return tokens_; }
  const std::string& key() const { return tokens_.front(); }

  void expect_key(const char* key) const {
    STM_CHECK_MSG(key_is(key), "repro: expected '" << key << "' but got \""
                                                   << raw_ << "\"");
  }
  bool key_is(const char* key) const { return tokens_.front() == key; }

  void expect_arity(std::size_t args) const {
    STM_CHECK_MSG(tokens_.size() == args + 1,
                  "repro: '" << key() << "' takes " << args
                             << " value(s) but got \"" << raw_ << "\"");
  }

  std::uint64_t u64(std::size_t i) const {
    STM_CHECK_MSG(i < tokens_.size(),
                  "repro: missing value in \"" << raw_ << "\"");
    const std::string& tok = tokens_[i];
    std::uint64_t value = 0;
    std::size_t used = 0;
    try {
      value = std::stoull(tok, &used, 0);
    } catch (const std::exception&) {
      used = 0;
    }
    STM_CHECK_MSG(used == tok.size() && tok[0] != '-',
                  "repro: \"" << tok << "\" is not a number in \"" << raw_
                              << "\"");
    return value;
  }

  bool boolean(std::size_t i) const {
    const std::uint64_t value = u64(i);
    STM_CHECK_MSG(value <= 1, "repro: \"" << tokens_[i]
                                          << "\" is not 0/1 in \"" << raw_
                                          << "\"");
    return value == 1;
  }

 private:
  std::istringstream in_;
  std::string raw_;
  std::vector<std::string> tokens_;
};

std::vector<Label> parse_labels(const LineReader& reader, std::size_t count) {
  reader.expect_arity(count);
  std::vector<Label> labels(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t value = reader.u64(i + 1);
    STM_CHECK_MSG(value < kMaxLabels, "repro: label " << value
                                                      << " out of range in \""
                                                      << reader.raw() << "\"");
    labels[i] = static_cast<Label>(value);
  }
  return labels;
}

}  // namespace

std::string to_repro(const TestCase& c) {
  std::ostringstream os;
  os << kMagic << " " << kVersion << "\n";
  os << "seed " << c.seed << "\n";
  os << "family " << to_string(c.family) << "\n";

  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < c.graph.num_vertices(); ++u)
    for (VertexId v : c.graph.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  os << "graph " << c.graph.num_vertices() << " " << edges.size() << "\n";
  write_edges(os, "e", edges);
  if (c.graph.is_labeled()) {
    os << "labels";
    for (const Label l : c.graph.labels()) os << " " << +l;
    os << "\n";
  }

  std::vector<std::pair<VertexId, VertexId>> pattern_edges;
  for (const auto& [u, v] : c.pattern.edges())
    pattern_edges.emplace_back(static_cast<VertexId>(u),
                               static_cast<VertexId>(v));
  os << "pattern " << c.pattern.size() << " " << pattern_edges.size() << "\n";
  write_edges(os, "pe", pattern_edges);
  if (c.pattern.is_labeled()) {
    os << "plabels";
    for (const Label l : c.pattern.label_vector()) os << " " << +l;
    os << "\n";
  }

  os << "plan " << (c.plan.induced == Induced::kVertex ? "vertex" : "edge")
     << " "
     << (c.plan.count_mode == CountMode::kUniqueSubgraphs ? "unique"
                                                          : "embeddings")
     << " " << (c.plan.code_motion ? 1 : 0) << "\n";
  os << "simt " << c.simt.device.num_blocks << " "
     << c.simt.device.warps_per_block << " " << c.simt.unroll << " "
     << c.simt.chunk_size << " " << (c.simt.local_steal ? 1 : 0) << " "
     << (c.simt.global_steal ? 1 : 0) << " " << c.simt.stop_level << " "
     << c.simt.detect_level << "\n";
  os << "host " << c.host.num_threads << " " << c.host.chunk_size << "\n";
  // Optional multi-query section (version-1 readers that predate it never
  // wrote it): the extra standing patterns of the oracle's mqo lane.
  if (!c.mqo_patterns.empty()) {
    os << "mqo " << c.mqo_patterns.size() << "\n";
    for (const Pattern& p : c.mqo_patterns) {
      const auto mq_edges = p.edges();
      os << "mq " << p.size() << " " << mq_edges.size() << "\n";
      for (const auto& [u, v] : mq_edges) os << "mqe " << u << " " << v << "\n";
      if (p.is_labeled()) {
        os << "mqlabels";
        for (const Label l : p.label_vector()) os << " " << +l;
        os << "\n";
      }
    }
  }
  // Optional section (version-1 readers that predate it never wrote it):
  // only non-default storage backends are recorded.
  if (c.storage_backend != storage::Backend::kUncompressed) {
    os << "storage " << storage::to_string(c.storage_backend) << " "
       << c.storage_budget_bytes << "\n";
  }
  if (c.forced_isa != simd::IsaChoice::kAuto)
    os << "isa " << simd::to_string(c.forced_isa) << "\n";
  os << "end\n";
  return os.str();
}

TestCase from_repro(const std::string& text) {
  LineReader reader(text);

  reader.require_next("the magic line");
  reader.expect_key(kMagic);
  reader.expect_arity(1);
  STM_CHECK_MSG(reader.u64(1) == static_cast<std::uint64_t>(kVersion),
                "repro: unsupported version in \"" << reader.raw() << "\"");

  TestCase c;

  reader.require_next("'seed'");
  reader.expect_key("seed");
  reader.expect_arity(1);
  c.seed = reader.u64(1);

  reader.require_next("'family'");
  reader.expect_key("family");
  reader.expect_arity(1);
  c.family = graph_family_from_string(reader.tokens()[1]);

  reader.require_next("'graph'");
  reader.expect_key("graph");
  reader.expect_arity(2);
  const std::uint64_t n = reader.u64(1);
  const std::uint64_t m = reader.u64(2);
  GraphBuilder builder(static_cast<VertexId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    reader.require_next("an 'e u v' edge line");
    reader.expect_key("e");
    reader.expect_arity(2);
    const std::uint64_t u = reader.u64(1);
    const std::uint64_t v = reader.u64(2);
    STM_CHECK_MSG(u < n && v < n, "repro: edge endpoint out of range in \""
                                      << reader.raw() << "\"");
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  c.graph = builder.build();

  reader.require_next("'labels' or 'pattern'");
  if (reader.key_is("labels")) {
    c.graph = c.graph.with_labels(parse_labels(reader, n));
    reader.require_next("'pattern'");
  }

  reader.expect_key("pattern");
  reader.expect_arity(2);
  const std::uint64_t pn = reader.u64(1);
  const std::uint64_t pm = reader.u64(2);
  STM_CHECK_MSG(pn >= 1 && pn <= kMaxPatternSize,
                "repro: pattern size " << pn << " out of range");
  std::vector<std::pair<int, int>> pattern_edges;
  for (std::uint64_t i = 0; i < pm; ++i) {
    reader.require_next("a 'pe u v' pattern edge line");
    reader.expect_key("pe");
    reader.expect_arity(2);
    const std::uint64_t u = reader.u64(1);
    const std::uint64_t v = reader.u64(2);
    STM_CHECK_MSG(u < pn && v < pn && u != v,
                  "repro: bad pattern edge in \"" << reader.raw() << "\"");
    pattern_edges.emplace_back(static_cast<int>(u), static_cast<int>(v));
  }

  reader.require_next("'plabels' or 'plan'");
  std::vector<Label> pattern_labels;
  if (reader.key_is("plabels")) {
    pattern_labels = parse_labels(reader, pn);
    reader.require_next("'plan'");
  }
  c.pattern = Pattern(static_cast<std::size_t>(pn), pattern_edges,
                      std::move(pattern_labels));

  reader.expect_key("plan");
  reader.expect_arity(3);
  const std::string& induced = reader.tokens()[1];
  STM_CHECK_MSG(induced == "edge" || induced == "vertex",
                "repro: unknown induced mode in \"" << reader.raw() << "\"");
  c.plan.induced = induced == "vertex" ? Induced::kVertex : Induced::kEdge;
  const std::string& mode = reader.tokens()[2];
  STM_CHECK_MSG(mode == "embeddings" || mode == "unique",
                "repro: unknown count mode in \"" << reader.raw() << "\"");
  c.plan.count_mode = mode == "unique" ? CountMode::kUniqueSubgraphs
                                       : CountMode::kEmbeddings;
  c.plan.code_motion = reader.boolean(3);

  reader.require_next("'simt'");
  reader.expect_key("simt");
  reader.expect_arity(8);
  c.simt.device.num_blocks = static_cast<std::uint32_t>(reader.u64(1));
  c.simt.device.warps_per_block = static_cast<std::uint32_t>(reader.u64(2));
  c.simt.unroll = static_cast<std::uint32_t>(reader.u64(3));
  c.simt.chunk_size = static_cast<std::uint32_t>(reader.u64(4));
  c.simt.local_steal = reader.boolean(5);
  c.simt.global_steal = reader.boolean(6);
  c.simt.stop_level = static_cast<std::uint32_t>(reader.u64(7));
  c.simt.detect_level = static_cast<std::uint32_t>(reader.u64(8));
  STM_CHECK_MSG(c.simt.device.num_blocks >= 1 &&
                    c.simt.device.warps_per_block >= 1 && c.simt.unroll >= 1 &&
                    c.simt.chunk_size >= 1,
                "repro: simt knobs must be >= 1 in \"" << reader.raw() << "\"");

  reader.require_next("'host'");
  reader.expect_key("host");
  reader.expect_arity(2);
  c.host.num_threads = static_cast<std::size_t>(reader.u64(1));
  c.host.chunk_size = static_cast<VertexId>(reader.u64(2));
  STM_CHECK_MSG(c.host.num_threads >= 1 && c.host.chunk_size >= 1,
                "repro: host knobs must be >= 1 in \"" << reader.raw() << "\"");

  reader.require_next("'mqo', 'storage', 'isa' or 'end'");
  if (reader.key_is("mqo")) {
    reader.expect_arity(1);
    const std::uint64_t count = reader.u64(1);
    // Each pattern ends with a lookahead read (its optional 'mqlabels'),
    // so every iteration starts with the current line already loaded.
    reader.require_next(count > 0 ? "an 'mq n m' line"
                                  : "'storage', 'isa' or 'end'");
    for (std::uint64_t k = 0; k < count; ++k) {
      reader.expect_key("mq");
      reader.expect_arity(2);
      const std::uint64_t mqn = reader.u64(1);
      const std::uint64_t mqm = reader.u64(2);
      STM_CHECK_MSG(mqn >= 2 && mqn <= kMaxPatternSize,
                    "repro: mqo pattern size " << mqn << " out of range");
      std::vector<std::pair<int, int>> mq_edges;
      for (std::uint64_t i = 0; i < mqm; ++i) {
        reader.require_next("an 'mqe u v' line");
        reader.expect_key("mqe");
        reader.expect_arity(2);
        const std::uint64_t u = reader.u64(1);
        const std::uint64_t v = reader.u64(2);
        STM_CHECK_MSG(u < mqn && v < mqn && u != v,
                      "repro: bad mqo pattern edge in \"" << reader.raw()
                                                          << "\"");
        mq_edges.emplace_back(static_cast<int>(u), static_cast<int>(v));
      }
      reader.require_next("'mqlabels', 'mq', 'storage', 'isa' or 'end'");
      std::vector<Label> mq_labels;
      if (reader.key_is("mqlabels")) {
        mq_labels = parse_labels(reader, mqn);
        reader.require_next("'mq', 'storage', 'isa' or 'end'");
      }
      c.mqo_patterns.emplace_back(static_cast<std::size_t>(mqn), mq_edges,
                                  std::move(mq_labels));
    }
  }
  // Whether or not an mqo section was present, the current line is now the
  // next section's ('storage', 'isa' or 'end').
  if (reader.key_is("storage")) {
    reader.expect_arity(2);
    STM_CHECK_MSG(
        storage::backend_from_string(reader.tokens()[1], c.storage_backend),
        "repro: unknown storage backend in \"" << reader.raw() << "\"");
    c.storage_budget_bytes = reader.u64(2);
    reader.require_next("'isa' or 'end'");
  }
  if (reader.key_is("isa")) {
    reader.expect_arity(1);
    STM_CHECK_MSG(
        simd::isa_choice_from_string(reader.tokens()[1].c_str(), &c.forced_isa),
        "repro: unknown isa choice in \"" << reader.raw() << "\"");
    reader.require_next("'end'");
  }
  reader.expect_key("end");
  STM_CHECK_MSG(!reader.next(),
                "repro: trailing content after 'end': \"" << reader.raw()
                                                          << "\"");
  return c;
}

void save_repro(const TestCase& c, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  STM_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << to_repro(c);
  out.flush();
  STM_CHECK_MSG(out.good(), "failed writing repro to " << path);
}

TestCase load_repro(const std::string& path) {
  std::ifstream in(path);
  STM_CHECK_MSG(in.good(), "cannot open repro file " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_repro(buffer.str());
}

}  // namespace stm::harness
