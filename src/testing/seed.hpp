// Seed plumbing for the conformance harness.
//
// Every randomized suite derives its streams from one base seed so a CI
// failure is reproducible from a single number printed in the failure
// message: base_seed() honors the STMATCH_FUZZ_SEED environment variable
// (falling back to the suite's built-in default), and derive_seed() splits
// statistically independent per-trial streams from it.
#pragma once

#include <cstdint>

namespace stm::harness {

/// The harness-wide base seed: STMATCH_FUZZ_SEED when set (parsed as a
/// decimal or 0x-hex integer; malformed values throw check_error so a typo
/// never silently re-runs the default schedule), else `fallback`.
std::uint64_t base_seed(std::uint64_t fallback);

/// An independent stream seed derived from (base, stream) via splitmix64.
/// Distinct streams of one base never share a generator state prefix.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace stm::harness
