// Seeded workload generators for the conformance harness.
//
// A TestCase is one fully materialized (graph, pattern, plan options, engine
// configs) point of the configuration space the engines must agree on. The
// generators sample graph families chosen to stress different engine paths —
// uniform (ER), degree-skewed (power law / RMAT), bipartite, star-heavy
// (steal-path stress), and corner cases (tiny graphs, no edges, graphs
// smaller than the pattern, duplicate-edge/self-loop edge lists that must
// deduplicate) — plus connected patterns up to 6 vertices with symmetry-rich
// shapes, and uniform samples over the unroll/order/code-motion/mode knobs.
//
// Everything is a pure function of the seed: random_case(seed) is the unit
// of reproducibility that .repro files, CI failure messages and the
// minimizer all reference.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/host_engine.hpp"
#include "dist/partition.hpp"
#include "graph/graph.hpp"
#include "pattern/pattern.hpp"
#include "pattern/plan.hpp"
#include "storage/store.hpp"
#include "util/rng.hpp"

namespace stm::harness {

/// Graph family of a generated case (recorded for triage / coverage stats).
enum class GraphFamily : std::uint8_t {
  kErdosRenyi = 0,
  kPowerLaw,   // Barabási–Albert / RMAT skew
  kBipartite,  // complete or sparse random bipartite
  kStarHeavy,  // few hubs with many leaves: steal-path stress
  kCorner,     // tiny / empty / sub-pattern-size / dedup corner cases
};
inline constexpr std::size_t kNumGraphFamilies = 5;

const char* to_string(GraphFamily family);
/// Inverse of to_string; throws check_error on unknown names.
GraphFamily graph_family_from_string(const std::string& name);

struct WorkloadOptions {
  VertexId min_vertices = 8;
  VertexId max_vertices = 64;
  /// Pattern sizes sampled uniformly in [3, max_pattern_size]; a size-2
  /// (single-edge) pattern is mixed in occasionally as its own corner case.
  std::size_t max_pattern_size = 6;
  double labeled_prob = 0.4;
  std::size_t max_labels = 4;
  double vertex_induced_prob = 0.3;
  double unique_subgraphs_prob = 0.3;
  double no_code_motion_prob = 0.25;
};

struct GeneratedGraph {
  Graph graph;
  GraphFamily family = GraphFamily::kErdosRenyi;
};

/// One sampled data graph (labels attached per labeled_prob).
GeneratedGraph random_graph(Rng& rng, const WorkloadOptions& opts = {});

/// A connected pattern with at most opts.max_pattern_size vertices: random
/// tree-plus-extra-edges shapes mixed with symmetry-rich fixed shapes
/// (cliques, cycles, stars, complete bipartite). Also exercises the
/// disconnected-rejection contract: it occasionally builds a deliberately
/// disconnected pattern and verifies plan compilation rejects it with
/// check_error before resampling (a harness bug throws).
Pattern random_pattern(Rng& rng, const WorkloadOptions& opts = {});

/// Samples the matching-semantics knobs (induced / count mode / code motion).
PlanOptions random_plan_options(Rng& rng, const WorkloadOptions& opts = {});

/// Samples SIMT device shape, unroll, chunking and steal knobs. The v-range
/// fields are left at full coverage (the oracle expects complete counts).
EngineConfig random_engine_config(Rng& rng);

/// Samples host thread count and chunk size.
HostEngineConfig random_host_config(Rng& rng);

/// One point of the configuration space.
struct TestCase {
  /// The seed this case was generated from (0 for hand-built repros).
  std::uint64_t seed = 0;
  GraphFamily family = GraphFamily::kCorner;
  Graph graph;
  Pattern pattern;
  PlanOptions plan;
  EngineConfig simt;
  HostEngineConfig host;
  /// Sharded-lane knobs, sampled from an independent derived stream so
  /// pre-existing seeds keep generating bit-identical cases.
  std::uint32_t num_shards = 1;  // in {1, 2, 4, 8}
  dist::PartitionStrategy shard_strategy = dist::PartitionStrategy::kContiguous;
  /// Storage-lane knobs, again from their own derived stream: the backend
  /// the oracle re-runs the engines under (kUncompressed = lane skipped).
  storage::Backend storage_backend = storage::Backend::kUncompressed;
  /// Spill-backend page-cache budget, deliberately tiny so fuzz-sized
  /// graphs still churn through eviction.
  std::uint64_t storage_budget_bytes = 0;
  /// ISA-lane knob (own derived stream): the SIMD kernel table the oracle
  /// forces for the whole case, so SIMD vs scalar bit-exactness is fuzzed
  /// on whole-query counts. Sampled uniformly over all choices regardless
  /// of what this machine supports (generation stays a pure function of the
  /// seed everywhere); the oracle degrades unsupported levels to kAuto.
  simd::IsaChoice forced_isa = simd::IsaChoice::kAuto;
  /// Multi-query-lane knob (own derived stream): 0-3 extra standing
  /// patterns the oracle registers alongside `pattern` in one shared-prefix
  /// index — canonical-isomorphic relabelings of the case pattern, the
  /// prism / K_{3,3} near-collider pair, and independently sampled shapes —
  /// so indexed deltas are fuzzed against the per-pattern matchers.
  std::vector<Pattern> mqo_patterns;
};

/// The fully derived case of `seed`: same seed, same case, bit for bit.
/// Pattern labels are only drawn when the graph is labeled.
TestCase random_case(std::uint64_t seed, const WorkloadOptions& opts = {});

/// One-line human summary (family, sizes, knob settings) for logs.
std::string describe(const TestCase& c);

}  // namespace stm::harness
