#include "testing/workload.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "pattern/matching_order.hpp"
#include "util/check.hpp"

namespace stm::harness {

const char* to_string(GraphFamily family) {
  switch (family) {
    case GraphFamily::kErdosRenyi:
      return "erdos-renyi";
    case GraphFamily::kPowerLaw:
      return "power-law";
    case GraphFamily::kBipartite:
      return "bipartite";
    case GraphFamily::kStarHeavy:
      return "star-heavy";
    case GraphFamily::kCorner:
      return "corner";
  }
  return "unknown";
}

GraphFamily graph_family_from_string(const std::string& name) {
  for (std::size_t i = 0; i < kNumGraphFamilies; ++i) {
    const auto family = static_cast<GraphFamily>(i);
    if (name == to_string(family)) return family;
  }
  STM_CHECK_MSG(false, "unknown graph family '" << name << "'");
}

namespace {

Graph random_bipartite(Rng& rng, VertexId n) {
  const VertexId a = 2 + static_cast<VertexId>(rng.next_below(n / 2));
  const VertexId b = std::max<VertexId>(2, n - a);
  if (rng.next_bool(0.35)) return make_complete_bipartite(a, b);
  // Sparse random bipartite: edges only across the parts.
  GraphBuilder builder(a + b);
  const double p = 0.15 + 0.35 * rng.next_double();
  for (VertexId u = 0; u < a; ++u)
    for (VertexId v = a; v < a + b; ++v)
      if (rng.next_bool(p)) builder.add_edge(u, v);
  return builder.build();
}

Graph random_star_heavy(Rng& rng, VertexId n) {
  // A few hubs own most of the adjacency; sprinkled rim edges create the
  // deep-but-narrow subtrees that exercise the stealing state machine.
  const VertexId hubs = 1 + static_cast<VertexId>(rng.next_below(3));
  GraphBuilder builder(n);
  for (VertexId h = 0; h < hubs && h < n; ++h)
    for (VertexId v = hubs; v < n; ++v)
      if (rng.next_bool(0.7)) builder.add_edge(h, v);
  const std::uint64_t rim = rng.next_below(n);
  for (std::uint64_t i = 0; i < rim; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u != v) builder.add_edge(u, v);
  }
  return builder.build();
}

Graph random_corner(Rng& rng) {
  switch (rng.next_below(6)) {
    case 0:  // edgeless: every engine must count zero for edged patterns
      return Graph(std::vector<EdgeId>(
                       1 + 1 + rng.next_below(6), 0),
                   {});
    case 1:  // smaller than most patterns
      return make_clique(2 + static_cast<VertexId>(rng.next_below(3)));
    case 2:  // multigraph-adjacent: duplicate edges and self-loops fed
             // through the builder must deduplicate to a simple graph
    {
      const auto n = static_cast<VertexId>(4 + rng.next_below(8));
      GraphBuilder builder(n);
      const std::uint64_t tokens = 3 * n;
      for (std::uint64_t i = 0; i < tokens; ++i) {
        const auto u = static_cast<VertexId>(rng.next_below(n));
        const auto v = static_cast<VertexId>(rng.next_below(n));
        builder.add_edge(u, v);  // self-loops dropped, duplicates deduped
        if (rng.next_bool(0.5)) builder.add_edge(v, u);  // mirrored duplicate
      }
      return builder.build();
    }
    case 3:
      return make_path(2 + static_cast<VertexId>(rng.next_below(10)));
    case 4:
      return make_cycle(3 + static_cast<VertexId>(rng.next_below(9)));
    default:
      return make_grid(2 + static_cast<VertexId>(rng.next_below(4)),
                       2 + static_cast<VertexId>(rng.next_below(4)));
  }
}

/// A deliberately disconnected pattern (two cliques with no bridge).
Pattern disconnected_pattern(Rng& rng) {
  const std::size_t a = 2 + rng.next_below(2);  // 2..3
  const std::size_t b = 2;
  std::vector<std::pair<int, int>> edges;
  for (std::size_t u = 0; u < a; ++u)
    for (std::size_t v = u + 1; v < a; ++v)
      edges.emplace_back(static_cast<int>(u), static_cast<int>(v));
  edges.emplace_back(static_cast<int>(a), static_cast<int>(a + 1));
  return Pattern(a + b, edges);
}

/// Symmetry-rich fixed shapes: large automorphism groups stress the
/// symmetry-breaking constraints and the |Aut| bookkeeping.
Pattern symmetric_pattern(Rng& rng, std::size_t size) {
  std::vector<std::pair<int, int>> edges;
  switch (rng.next_below(4)) {
    case 0:  // clique
      for (std::size_t u = 0; u < size; ++u)
        for (std::size_t v = u + 1; v < size; ++v)
          edges.emplace_back(static_cast<int>(u), static_cast<int>(v));
      break;
    case 1:  // cycle
      if (size < 3) return Pattern(2, {{0, 1}});
      for (std::size_t u = 0; u < size; ++u)
        edges.emplace_back(static_cast<int>(u),
                           static_cast<int>((u + 1) % size));
      break;
    case 2:  // star
      for (std::size_t v = 1; v < size; ++v)
        edges.emplace_back(0, static_cast<int>(v));
      break;
    default: {  // complete bipartite
      const std::size_t a = 1 + rng.next_below(size - 1);
      for (std::size_t u = 0; u < a; ++u)
        for (std::size_t v = a; v < size; ++v)
          edges.emplace_back(static_cast<int>(u), static_cast<int>(v));
      break;
    }
  }
  return Pattern(size, edges);
}

/// Random connected pattern: a random tree plus extra edges.
Pattern tree_plus_edges(Rng& rng, std::size_t size) {
  std::vector<std::pair<int, int>> edges;
  for (std::size_t v = 1; v < size; ++v)
    edges.emplace_back(static_cast<int>(rng.next_below(v)),
                       static_cast<int>(v));
  for (std::size_t u = 0; u < size; ++u)
    for (std::size_t v = u + 1; v < size; ++v) {
      const bool tree_edge =
          std::find(edges.begin(), edges.end(),
                    std::make_pair(static_cast<int>(u), static_cast<int>(v))) !=
          edges.end();
      if (!tree_edge && rng.next_bool(0.25))
        edges.emplace_back(static_cast<int>(u), static_cast<int>(v));
    }
  return Pattern(size, edges);
}

}  // namespace

GeneratedGraph random_graph(Rng& rng, const WorkloadOptions& opts) {
  STM_CHECK(opts.min_vertices >= 2 && opts.max_vertices >= opts.min_vertices);
  const auto n = static_cast<VertexId>(
      opts.min_vertices +
      rng.next_below(opts.max_vertices - opts.min_vertices + 1));
  GeneratedGraph result;
  // Family mix: weighted toward the random families, with a steady trickle
  // of corner cases.
  const std::uint64_t pick = rng.next_below(10);
  if (pick < 3) {
    result.family = GraphFamily::kErdosRenyi;
    result.graph = make_erdos_renyi(n, 0.05 + 0.25 * rng.next_double(), rng());
  } else if (pick < 6) {
    result.family = GraphFamily::kPowerLaw;
    if (rng.next_bool(0.5)) {
      result.graph = make_barabasi_albert(
          n, 1 + static_cast<VertexId>(rng.next_below(4)), rng());
    } else {
      result.graph = make_rmat(5 + static_cast<int>(rng.next_below(2)),
                               3.0 + 3.0 * rng.next_double(), 0.45, 0.22, 0.22,
                               rng());
    }
  } else if (pick < 8) {
    result.family = GraphFamily::kBipartite;
    result.graph = random_bipartite(rng, std::max<VertexId>(n, 6));
  } else if (pick < 9) {
    result.family = GraphFamily::kStarHeavy;
    result.graph = random_star_heavy(rng, std::max<VertexId>(n / 2, 8));
  } else {
    result.family = GraphFamily::kCorner;
    result.graph = random_corner(rng);
  }
  if (result.graph.num_vertices() > 0 && rng.next_bool(opts.labeled_prob)) {
    const std::size_t num_labels = 2 + rng.next_below(opts.max_labels - 1);
    result.graph = with_random_labels(result.graph, num_labels, rng());
  }
  return result;
}

Pattern random_pattern(Rng& rng, const WorkloadOptions& opts) {
  STM_CHECK(opts.max_pattern_size >= 3 &&
            opts.max_pattern_size <= kMaxPatternSize);
  // Disconnected-rejection probe: plan compilation must refuse disconnected
  // patterns. Running it inside the generator keeps the contract under the
  // same fuzz pressure as the positive paths.
  if (rng.next_bool(0.05)) {
    const Pattern bad = disconnected_pattern(rng);
    bool rejected = false;
    try {
      (void)reorder_for_matching(bad);
    } catch (const check_error&) {
      rejected = true;
    }
    STM_CHECK_MSG(rejected, "disconnected pattern '"
                                << bad.to_string()
                                << "' was not rejected by plan compilation");
  }
  if (rng.next_bool(0.08)) return Pattern(2, {{0, 1}});  // single edge
  const std::size_t size = 3 + rng.next_below(opts.max_pattern_size - 2);
  Pattern p = rng.next_bool(0.35) ? symmetric_pattern(rng, size)
                                  : tree_plus_edges(rng, size);
  STM_CHECK(p.is_connected());
  return p;
}

PlanOptions random_plan_options(Rng& rng, const WorkloadOptions& opts) {
  PlanOptions plan;
  plan.induced = rng.next_bool(opts.vertex_induced_prob) ? Induced::kVertex
                                                         : Induced::kEdge;
  plan.count_mode = rng.next_bool(opts.unique_subgraphs_prob)
                        ? CountMode::kUniqueSubgraphs
                        : CountMode::kEmbeddings;
  plan.code_motion = !rng.next_bool(opts.no_code_motion_prob);
  return plan;
}

EngineConfig random_engine_config(Rng& rng) {
  EngineConfig cfg;
  cfg.device.num_blocks = 1 + static_cast<std::uint32_t>(rng.next_below(8));
  cfg.device.warps_per_block =
      1 + static_cast<std::uint32_t>(rng.next_below(6));
  cfg.unroll = 1u << rng.next_below(4);  // 1, 2, 4, 8
  cfg.chunk_size = 1 + static_cast<std::uint32_t>(rng.next_below(12));
  cfg.local_steal = rng.next_bool(0.7);
  cfg.global_steal = rng.next_bool(0.7);
  cfg.stop_level = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  cfg.detect_level = static_cast<std::uint32_t>(rng.next_below(3));
  return cfg;
}

HostEngineConfig random_host_config(Rng& rng) {
  HostEngineConfig cfg;
  cfg.num_threads = 1 + rng.next_below(4);
  cfg.chunk_size = 1 + static_cast<VertexId>(rng.next_below(12));
  return cfg;
}

TestCase random_case(std::uint64_t seed, const WorkloadOptions& opts) {
  Rng rng(seed);
  TestCase c;
  c.seed = seed;
  GeneratedGraph g = random_graph(rng, opts);
  c.family = g.family;
  c.graph = std::move(g.graph);
  Pattern p = random_pattern(rng, opts);
  if (c.graph.is_labeled()) {
    const std::size_t universe = c.graph.num_labels();
    std::vector<Label> labels(p.size());
    for (auto& l : labels)
      l = static_cast<Label>(rng.next_below(std::max<std::size_t>(universe, 1)));
    p = p.with_labels(labels);
  }
  c.pattern = p;
  c.plan = random_plan_options(rng, opts);
  c.simt = random_engine_config(rng);
  c.host = random_host_config(rng);
  // Sharded-lane knobs from a derived stream, after everything else: the
  // main stream's draws are untouched, so every pre-existing seed still
  // yields the same (graph, pattern, knobs) bit for bit.
  Rng shard_rng(seed ^ 0x9e3779b97f4a7c15ULL);
  static constexpr std::uint32_t kShardCounts[] = {1, 2, 4, 8};
  c.num_shards = kShardCounts[shard_rng.next_below(4)];
  c.shard_strategy = static_cast<dist::PartitionStrategy>(
      shard_rng.next_below(dist::kNumPartitionStrategies));
  // Storage-lane knobs from a third derived stream, same reasoning: the
  // backend draw must not perturb the shard draw (or vice versa).
  Rng storage_rng(seed ^ 0xc2b2ae3d27d4eb4fULL);
  static constexpr storage::Backend kBackends[] = {
      storage::Backend::kUncompressed, storage::Backend::kCompressed,
      storage::Backend::kCompressedBitset, storage::Backend::kSpill};
  c.storage_backend = kBackends[storage_rng.next_below(4)];
  if (c.storage_backend == storage::Backend::kSpill)
    c.storage_budget_bytes = 512ull << storage_rng.next_below(3);
  // ISA-lane knob from a fourth derived stream: half the cases stay on the
  // auto dispatch, the rest pin one kernel table (clamped by the oracle if
  // this machine lacks it).
  Rng isa_rng(seed ^ 0x165667b19e3779f9ULL);
  static constexpr simd::IsaChoice kIsaChoices[] = {
      simd::IsaChoice::kAuto, simd::IsaChoice::kScalar,
      simd::IsaChoice::kSse42, simd::IsaChoice::kAvx2};
  c.forced_isa = kIsaChoices[isa_rng.next_below(4)];
  // Multi-query-lane knobs from a fifth derived stream: the extra standing
  // patterns the oracle registers next to c.pattern. Duplicates of the case
  // pattern stress canonical grouping, the prism / K_{3,3} pair stresses
  // deep shared prefixes that must still diverge, and fresh samples stress
  // arbitrary trie mixes.
  Rng mqo_rng(seed ^ 0x94d049bb133111ebULL);
  const std::size_t extras = mqo_rng.next_below(4);
  for (std::size_t i = 0; i < extras; ++i) {
    switch (mqo_rng.next_below(4)) {
      case 0: {  // canonical-isomorphic relabeling of the case pattern
        std::vector<std::size_t> perm(c.pattern.size());
        for (std::size_t v = 0; v < perm.size(); ++v) perm[v] = v;
        for (std::size_t v = perm.size(); v > 1; --v)
          std::swap(perm[v - 1], perm[mqo_rng.next_below(v)]);
        c.mqo_patterns.push_back(c.pattern.relabeled(perm));
        break;
      }
      case 1:
        c.mqo_patterns.push_back(
            Pattern::parse("0-1,1-2,2-0,3-4,4-5,5-3,0-3,1-4,2-5"));  // prism
        break;
      case 2:
        c.mqo_patterns.push_back(Pattern::parse(
            "0-3,0-4,0-5,1-3,1-4,1-5,2-3,2-4,2-5"));  // K_{3,3}
        break;
      default: {
        Pattern extra = random_pattern(mqo_rng, opts);
        if (c.graph.is_labeled()) {
          const std::size_t universe = c.graph.num_labels();
          std::vector<Label> labels(extra.size());
          for (auto& l : labels)
            l = static_cast<Label>(
                mqo_rng.next_below(std::max<std::size_t>(universe, 1)));
          extra = extra.with_labels(labels);
        }
        c.mqo_patterns.push_back(std::move(extra));
        break;
      }
    }
  }
  return c;
}

std::string describe(const TestCase& c) {
  std::ostringstream os;
  os << "seed=" << c.seed << " family=" << to_string(c.family)
     << " n=" << c.graph.num_vertices() << " m=" << c.graph.num_edges()
     << (c.graph.is_labeled() ? " labeled" : "") << " pattern="
     << (c.pattern.size() == 0 ? std::string("<empty>") : c.pattern.to_string())
     << " k=" << c.pattern.size()
     << " induced=" << (c.plan.induced == Induced::kVertex ? "vertex" : "edge")
     << " mode="
     << (c.plan.count_mode == CountMode::kUniqueSubgraphs ? "unique"
                                                          : "embeddings")
     << " code_motion=" << (c.plan.code_motion ? 1 : 0)
     << " unroll=" << c.simt.unroll << " blocks=" << c.simt.device.num_blocks
     << " wpb=" << c.simt.device.warps_per_block
     << " steal=" << (c.simt.local_steal ? 1 : 0)
     << (c.simt.global_steal ? 1 : 0) << " threads=" << c.host.num_threads
     << " shards=" << c.num_shards << "/"
     << dist::to_string(c.shard_strategy)
     << " storage=" << storage::to_string(c.storage_backend);
  if (c.storage_backend == storage::Backend::kSpill)
    os << "/" << c.storage_budget_bytes << "B";
  if (c.forced_isa != simd::IsaChoice::kAuto)
    os << " isa=" << simd::to_string(c.forced_isa);
  if (!c.mqo_patterns.empty()) os << " mqo=" << c.mqo_patterns.size();
  return os.str();
}

}  // namespace stm::harness
