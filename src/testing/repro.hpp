// Self-contained failure reproductions.
//
// A .repro file is the complete, human-readable serialization of one
// TestCase: graph (edge list + labels), pattern, plan options and both
// engine configs, plus the originating seed for triage. The minimizer
// writes one per failure and `fuzz_match --replay file.repro` re-runs the
// oracle on it, so a CI artifact reproduces a disagreement with no access
// to the original fuzzing session.
//
// Format: a line-oriented `key value...` text file opened by the magic
// line `stmatch-repro 1`. Parsing is strict — any missing section, stray
// token, out-of-range id or malformed number throws check_error with the
// offending line, so a truncated artifact fails loudly instead of
// replaying the wrong case.
#pragma once

#include <string>

#include "testing/workload.hpp"

namespace stm::harness {

/// Serializes every field of `c` (version 1 format).
std::string to_repro(const TestCase& c);

/// Inverse of to_repro. Throws check_error on any malformed input.
TestCase from_repro(const std::string& text);

/// Writes to_repro(c) to `path`; throws check_error if the file cannot be
/// written.
void save_repro(const TestCase& c, const std::string& path);

/// Reads and parses `path`; throws check_error if unreadable or malformed.
TestCase load_repro(const std::string& path);

}  // namespace stm::harness
