#include "testing/minimize.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace stm::harness {

namespace {

/// Bookkeeping shared by all shrink passes: counts probes against the
/// budget and applies the predicate.
class Prober {
 public:
  Prober(const FailurePredicate& fails, const MinimizeOptions& opts)
      : fails_(fails), opts_(opts) {}

  bool exhausted() const { return probes_ >= opts_.max_probes; }
  std::uint64_t probes() const { return probes_; }

  bool still_fails(const TestCase& candidate) {
    if (exhausted()) return false;
    ++probes_;
    // ddmin "unresolved" outcome: a shrink can produce a candidate the
    // engines reject outright (e.g. a labeled pattern over a graph whose
    // labeled vertices were all removed). Such a probe is not the failure
    // being chased, so the chunk is kept.
    try {
      return fails_(candidate);
    } catch (const std::exception&) {
      return false;
    }
  }

 private:
  const FailurePredicate& fails_;
  const MinimizeOptions& opts_;
  std::uint64_t probes_ = 0;
};

/// The subgraph induced on the kept vertices, relabeled compactly. Labels
/// follow their vertices.
Graph induced_subgraph(const Graph& g, const std::vector<bool>& keep) {
  std::vector<VertexId> new_id(g.num_vertices(), kNoVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (keep[v]) new_id[v] = next++;
  GraphBuilder builder(next);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (!keep[u]) continue;
    for (VertexId v : g.neighbors(u))
      if (u < v && keep[v]) builder.add_edge(new_id[u], new_id[v]);
  }
  Graph sub = builder.build();
  if (g.is_labeled() && next > 0) {
    std::vector<Label> labels(next);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (keep[v]) labels[new_id[v]] = g.label(v);
    sub = sub.with_labels(std::move(labels));
  }
  return sub;
}

std::vector<std::pair<VertexId, VertexId>> edge_list(const Graph& g) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  return edges;
}

Graph from_edge_list(VertexId n,
                     const std::vector<std::pair<VertexId, VertexId>>& edges,
                     const Graph& labels_from) {
  GraphBuilder builder(n);
  for (auto [u, v] : edges) builder.add_edge(u, v);
  Graph g = builder.build();
  if (labels_from.is_labeled() && n > 0) {
    std::vector<Label> labels(n);
    for (VertexId v = 0; v < n; ++v) labels[v] = labels_from.label(v);
    g = g.with_labels(std::move(labels));
  }
  return g;
}

/// ddmin-style pass: remove chunks of vertices, halving the chunk size.
bool shrink_vertices(TestCase& c, Prober& prober) {
  bool progress = false;
  VertexId chunk = std::max<VertexId>(1, c.graph.num_vertices() / 2);
  while (chunk >= 1 && !prober.exhausted()) {
    bool removed_any = false;
    for (VertexId start = 0; start < c.graph.num_vertices();) {
      const VertexId n = c.graph.num_vertices();
      std::vector<bool> keep(n, true);
      const VertexId end = std::min<VertexId>(n, start + chunk);
      for (VertexId v = start; v < end; ++v) keep[v] = false;
      TestCase candidate = c;
      candidate.graph = induced_subgraph(c.graph, keep);
      if (prober.still_fails(candidate)) {
        c = std::move(candidate);
        progress = removed_any = true;
        // ids shifted down: retry the same window against the new graph
      } else {
        start += chunk;
      }
      if (prober.exhausted()) break;
    }
    if (!removed_any) chunk /= 2;
  }
  return progress;
}

bool shrink_edges(TestCase& c, Prober& prober) {
  bool progress = false;
  auto edges = edge_list(c.graph);
  std::size_t chunk = std::max<std::size_t>(1, edges.size() / 2);
  while (chunk >= 1 && !prober.exhausted()) {
    bool removed_any = false;
    for (std::size_t start = 0; start < edges.size();) {
      std::vector<std::pair<VertexId, VertexId>> kept;
      kept.reserve(edges.size());
      const std::size_t end = std::min(edges.size(), start + chunk);
      for (std::size_t i = 0; i < edges.size(); ++i)
        if (i < start || i >= end) kept.push_back(edges[i]);
      TestCase candidate = c;
      candidate.graph =
          from_edge_list(c.graph.num_vertices(), kept, c.graph);
      if (prober.still_fails(candidate)) {
        c = std::move(candidate);
        edges = std::move(kept);
        progress = removed_any = true;
      } else {
        start += chunk;
      }
      if (prober.exhausted()) break;
    }
    if (!removed_any) chunk /= 2;
  }
  return progress;
}

/// Pattern with vertex `drop` removed (edges re-indexed); empty optional
/// when the remainder would be disconnected or too small.
Pattern drop_pattern_vertex(const Pattern& p, std::size_t drop) {
  std::vector<std::pair<int, int>> edges;
  for (auto [u, v] : p.edges()) {
    if (u == static_cast<int>(drop) || v == static_cast<int>(drop)) continue;
    edges.emplace_back(u - (u > static_cast<int>(drop) ? 1 : 0),
                       v - (v > static_cast<int>(drop) ? 1 : 0));
  }
  std::vector<Label> labels = p.label_vector();
  if (!labels.empty()) labels.erase(labels.begin() + static_cast<long>(drop));
  return Pattern(p.size() - 1, edges, std::move(labels));
}

bool shrink_pattern(TestCase& c, Prober& prober) {
  bool progress = false;
  // Vertex drops first (largest reduction), then edge drops.
  bool changed = true;
  while (changed && !prober.exhausted()) {
    changed = false;
    for (std::size_t v = 0; v < c.pattern.size() && c.pattern.size() > 2; ++v) {
      const Pattern smaller = drop_pattern_vertex(c.pattern, v);
      if (!smaller.is_connected()) continue;
      TestCase candidate = c;
      candidate.pattern = smaller;
      if (prober.still_fails(candidate)) {
        c = std::move(candidate);
        progress = changed = true;
        break;
      }
    }
  }
  changed = true;
  while (changed && !prober.exhausted()) {
    changed = false;
    const auto edges = c.pattern.edges();
    for (std::size_t i = 0; i < edges.size() && edges.size() > 1; ++i) {
      std::vector<std::pair<int, int>> kept;
      for (std::size_t j = 0; j < edges.size(); ++j)
        if (j != i) kept.push_back(edges[j]);
      const Pattern smaller(c.pattern.size(), kept, c.pattern.label_vector());
      if (!smaller.is_connected()) continue;
      TestCase candidate = c;
      candidate.pattern = smaller;
      if (prober.still_fails(candidate)) {
        c = std::move(candidate);
        progress = changed = true;
        break;
      }
    }
  }
  return progress;
}

/// Shrinks the registered-pattern axis of the multi-query lane: drop every
/// extra standing pattern at once, then one at a time, keeping only what
/// the failure needs.
bool shrink_mqo(TestCase& c, Prober& prober) {
  bool progress = false;
  if (!c.mqo_patterns.empty() && !prober.exhausted()) {
    TestCase candidate = c;
    candidate.mqo_patterns.clear();
    if (prober.still_fails(candidate)) {
      c = std::move(candidate);
      return true;
    }
  }
  bool changed = true;
  while (changed && !prober.exhausted()) {
    changed = false;
    for (std::size_t i = 0; i < c.mqo_patterns.size(); ++i) {
      TestCase candidate = c;
      candidate.mqo_patterns.erase(candidate.mqo_patterns.begin() +
                                   static_cast<std::ptrdiff_t>(i));
      if (prober.still_fails(candidate)) {
        c = std::move(candidate);
        progress = changed = true;
        break;
      }
    }
  }
  return progress;
}

bool shrink_config(TestCase& c, Prober& prober) {
  bool progress = false;
  // Each step rewrites one knob to its simplest value (returning false when
  // it is already there); kept only if the failure survives. Applied in a
  // fixed order so minimization is stable.
  const std::vector<std::function<bool(TestCase&)>> steps = {
      [](TestCase& t) { return std::exchange(t.simt.device.num_blocks, 1u) != 1u; },
      [](TestCase& t) {
        return std::exchange(t.simt.device.warps_per_block, 1u) != 1u;
      },
      [](TestCase& t) { return std::exchange(t.simt.unroll, 1u) != 1u; },
      [](TestCase& t) { return std::exchange(t.simt.chunk_size, 1u) != 1u; },
      [](TestCase& t) { return std::exchange(t.simt.local_steal, false); },
      [](TestCase& t) { return std::exchange(t.simt.global_steal, false); },
      [](TestCase& t) { return std::exchange(t.simt.stop_level, 1u) != 1u; },
      [](TestCase& t) { return std::exchange(t.simt.detect_level, 0u) != 0u; },
      [](TestCase& t) {
        return std::exchange(t.host.num_threads, std::size_t{1}) != 1u;
      },
      [](TestCase& t) {
        return std::exchange(t.host.chunk_size, VertexId{1}) != 1u;
      },
      [](TestCase& t) { return !std::exchange(t.plan.code_motion, true); },
      // Storage-backend reset near-last: a failure that survives on the raw
      // CSR is an engine bug, not a storage bug, and the repro should say so.
      [](TestCase& t) {
        const bool changed =
            t.storage_backend != storage::Backend::kUncompressed ||
            t.storage_budget_bytes != 0;
        t.storage_backend = storage::Backend::kUncompressed;
        t.storage_budget_bytes = 0;
        return changed;
      },
      // ISA-knob reset very last: a failure that survives on the auto
      // dispatch is not a kernel-table bug; one that only reproduces under
      // a pinned table is exactly the bit-exactness break the ISA lane
      // hunts, and the repro must keep the pin.
      [](TestCase& t) {
        return std::exchange(t.forced_isa, simd::IsaChoice::kAuto) !=
               simd::IsaChoice::kAuto;
      },
  };
  for (const auto& step : steps) {
    if (prober.exhausted()) break;
    TestCase candidate = c;
    if (!step(candidate)) continue;  // knob already at its simplest value
    if (prober.still_fails(candidate)) {
      c = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

}  // namespace

MinimizeResult minimize(const TestCase& failing, const FailurePredicate& fails,
                        const MinimizeOptions& opts) {
  STM_CHECK(static_cast<bool>(fails));
  MinimizeResult result;
  result.reduced = failing;
  Prober prober(fails, opts);
  if (!prober.still_fails(failing)) {
    result.probes = prober.probes();
    return result;  // still_failing = false: nothing to minimize
  }
  result.still_failing = true;
  for (std::uint32_t round = 0; round < opts.max_rounds; ++round) {
    ++result.rounds;
    bool progress = false;
    progress |= shrink_vertices(result.reduced, prober);
    progress |= shrink_edges(result.reduced, prober);
    progress |= shrink_pattern(result.reduced, prober);
    progress |= shrink_mqo(result.reduced, prober);
    progress |= shrink_config(result.reduced, prober);
    if (!progress || prober.exhausted()) break;
  }
  result.probes = prober.probes();
  return result;
}

}  // namespace stm::harness
