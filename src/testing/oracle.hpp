// Differential oracle: every engine must report the same count.
//
// One TestCase runs through all executors — the brute-force reference (the
// gold standard, sharing no candidate-set machinery with the optimized
// paths), the sequential recursive executor, the host-thread engine, the
// SIMT stack machine — and through the IncrementalMatcher by replaying the
// whole graph as one update batch over an edgeless base (count(∅) + Δ must
// equal the full count). Exact agreement, never tolerance: counts are
// integers and the paper's cross-system validation (§VIII) is bit-exact.
//
// Engines whose preconditions a case violates (vertex-induced semantics for
// the incremental path, patterns under two vertices) are skipped and
// recorded as such, so a disagreement report always lists which executors
// actually voted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testing/workload.hpp"

namespace stm::harness {

enum class EngineKind : std::uint8_t {
  kReference = 0,  // brute-force enumerator (expected value)
  kRecursive,      // sequential plan executor
  kHost,           // host-thread engine
  kSimt,           // simulated-GPU stack engine
  kIncremental,    // IncrementalMatcher replaying the graph as one batch
  kSharded,        // cross-shard coordinator over the case's sampled partition
  kStream,         // drained embedding streams (service layer, all engines)
  kStorage,        // engines re-run over the case's sampled storage backend
  kMqo,            // shared-prefix multi-query index vs per-pattern matchers
};
inline constexpr std::size_t kNumEngineKinds = 9;

const char* to_string(EngineKind kind);

struct OracleOptions {
  bool run_host = true;
  bool run_simt = true;
  bool run_incremental = true;
  bool run_sharded = true;
  /// The incremental replay anchors one enumeration per (pattern edge x
  /// delta edge x orientation); skip it for graphs past this many edges so
  /// a fuzz trial stays O(engine run), not O(edges x engine run).
  EdgeId incremental_max_edges = 300;
  /// Same bound for the sharded lane (its cut-edge term is anchored work of
  /// the same shape).
  EdgeId sharded_max_edges = 300;
  /// Streamed-embedding lane: every engine's drained stream must be
  /// bit-identical (order included), the multiset must equal the reference
  /// enumeration, and a paged cursor must concatenate to the full stream
  /// with no duplicate or loss.
  bool run_stream = true;
  /// Skip the stream lane past this many expected matches (it materializes
  /// every embedding several times over).
  std::uint64_t stream_max_matches = 200000;
  /// Storage lane: rebuild the case's graph under its sampled backend
  /// (compressed / compressed+bitset / spill under a tiny budget) and
  /// require bit-identical counts from the recursive, host and SIMT engines
  /// plus a bit-identical reference enumeration order. Cases that sampled
  /// kUncompressed skip the lane (the store would be the raw CSR).
  bool run_storage = true;
  /// Multi-query lane: register the case pattern plus its sampled
  /// mqo_patterns in one shared-prefix PatternIndex and replay the graph as
  /// a single batch over an edgeless base; every registration's indexed
  /// delta must equal its per-pattern IncrementalMatcher delta and the
  /// brute-force count, and collected embedding lists must equal
  /// DeltaStreamer's bit for bit.
  bool run_mqo = true;
  /// Like incremental_max_edges: the lane's trie walks anchor per delta
  /// edge, so skip graphs past this many edges.
  EdgeId mqo_max_edges = 200;
  /// Skip a registration's embedding-list comparison past this many
  /// expected matches (the lists materialize every embedding twice over).
  std::uint64_t mqo_max_matches = 20000;
};

struct EngineCount {
  EngineKind engine = EngineKind::kReference;
  std::uint64_t count = 0;
};

struct OracleReport {
  /// The reference count (what every other executor must equal).
  std::uint64_t expected = 0;
  /// One entry per executor that ran (reference first).
  std::vector<EngineCount> counts;
  /// Executors skipped because the case violates their preconditions.
  std::vector<EngineKind> skipped;
  bool agreed = true;
  /// Human-readable detail on non-count disagreements (stream order /
  /// multiset / cursor failures); empty when everything agreed.
  std::vector<std::string> notes;

  /// Multi-line human-readable summary (per-engine counts, mismatches).
  std::string describe() const;
};

/// Runs every applicable executor on `c` and compares counts exactly.
///
/// Hidden test-only sabotage hook: setting the environment variable
/// STMATCH_FUZZ_SABOTAGE=host_off_by_one perturbs the host-engine count by
/// +1 whenever it is nonzero, so the harness's own detection and
/// minimization paths can be exercised end to end (see TESTING.md).
OracleReport run_oracle(const TestCase& c, const OracleOptions& opts = {});

/// The default minimizer predicate: true iff run_oracle disagrees.
bool oracle_disagrees(const TestCase& c);

}  // namespace stm::harness
