// Delta-debugging case minimizer.
//
// Given a failing TestCase and a predicate that decides "still failing",
// minimize() greedily shrinks the case along four axes until a fixpoint:
// graph vertices (ddmin-style chunked removal of induced subsets), graph
// edges, the pattern (vertex and edge drops that keep it connected), and
// the engine configuration (stepping every knob toward its simplest value).
// Every probe rebuilds a complete, self-consistent TestCase, so the result
// replays through the same oracle as the original and serializes to a
// .repro file that reproduces the failure on its own.
//
// The predicate is arbitrary: the fuzz driver passes oracle_disagrees or a
// metamorphic-violation closure, and tests pass synthetic predicates.
#pragma once

#include <cstdint>
#include <functional>

#include "testing/workload.hpp"

namespace stm::harness {

using FailurePredicate = std::function<bool(const TestCase&)>;

struct MinimizeOptions {
  /// Full shrink passes over all four axes before giving up on progress.
  std::uint32_t max_rounds = 16;
  /// Hard cap on predicate evaluations (each is a full oracle run).
  std::uint64_t max_probes = 5000;
};

struct MinimizeResult {
  TestCase reduced;
  /// False iff the input did not fail the predicate (nothing to minimize).
  bool still_failing = false;
  std::uint64_t probes = 0;
  std::uint32_t rounds = 0;
};

/// Shrinks `failing` while `fails` keeps returning true. Deterministic: the
/// probe order depends only on the case contents. A predicate that throws is
/// treated as "candidate invalid, not the failure being chased" (the ddmin
/// unresolved outcome) and the shrink step is rejected.
MinimizeResult minimize(const TestCase& failing, const FailurePredicate& fails,
                        const MinimizeOptions& opts = {});

}  // namespace stm::harness
