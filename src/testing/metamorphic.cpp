#include "testing/metamorphic.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string_view>
#include <utility>

#include "core/recursive.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "graph/reorder.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/symmetry.hpp"
#include "util/check.hpp"

namespace stm::harness {

const char* to_string(Relation relation) {
  switch (relation) {
    case Relation::kRelabelInvariance:
      return "relabel-invariance";
    case Relation::kDisjointUnionAdditivity:
      return "disjoint-union-additivity";
    case Relation::kLabelEquivariance:
      return "label-equivariance";
    case Relation::kAutomorphismDivisibility:
      return "automorphism-divisibility";
    case Relation::kDeletionConsistency:
      return "deletion-consistency";
  }
  return "unknown";
}

namespace {

bool sabotage_metamorphic() {
  const char* mode = std::getenv("STMATCH_FUZZ_SABOTAGE");
  return mode != nullptr &&
         std::string_view(mode) == "metamorphic_off_by_one";
}

/// The layer's single trusted counter (see header).
std::uint64_t count(const Graph& g, const Pattern& p, const PlanOptions& opts) {
  const MatchingPlan plan(reorder_for_matching(p), opts);
  std::uint64_t c = recursive_count_range(g, plan, 0, g.num_vertices());
  if (c > 0 && sabotage_metamorphic()) ++c;
  return c;
}

void report_violation(MetamorphicReport& report, Relation relation,
                      const std::string& detail) {
  std::ostringstream os;
  os << to_string(relation) << ": " << detail;
  report.violations.push_back(os.str());
}

void check_relabel_invariance(const TestCase& c, Rng& rng,
                              MetamorphicReport& report,
                              std::uint64_t base_count) {
  constexpr ReorderKind kKinds[] = {ReorderKind::kDegreeDescending,
                                    ReorderKind::kDegreeAscending,
                                    ReorderKind::kBfs};
  for (const ReorderKind kind : kKinds) {
    ++report.checked;
    const std::uint64_t got = count(reorder_graph(c.graph, kind), c.pattern,
                                    c.plan);
    if (got != base_count) {
      std::ostringstream os;
      os << "reorder kind " << static_cast<int>(kind) << " changed the count "
         << base_count << " -> " << got;
      report_violation(report, Relation::kRelabelInvariance, os.str());
    }
  }
  // One uniformly random relabeling on top of the structured orders.
  ++report.checked;
  std::vector<VertexId> perm(c.graph.num_vertices());
  std::iota(perm.begin(), perm.end(), VertexId{0});
  rng.shuffle(perm);
  const std::uint64_t got = count(apply_reorder(c.graph, perm), c.pattern,
                                  c.plan);
  if (got != base_count) {
    std::ostringstream os;
    os << "random relabeling changed the count " << base_count << " -> "
       << got;
    report_violation(report, Relation::kRelabelInvariance, os.str());
  }
}

void check_disjoint_union(const TestCase& c, Rng& rng,
                          MetamorphicReport& report,
                          std::uint64_t base_count) {
  ++report.checked;
  Graph companion = make_erdos_renyi(
      8 + static_cast<VertexId>(rng.next_below(8)),
      0.2 + 0.2 * rng.next_double(), rng());
  if (c.graph.is_labeled()) {
    companion = with_random_labels(
        companion, std::max<std::size_t>(c.graph.num_labels(), 2), rng());
  }
  const std::uint64_t companion_count = count(companion, c.pattern, c.plan);
  const std::uint64_t union_count =
      count(disjoint_union(c.graph, companion), c.pattern, c.plan);
  if (union_count != base_count + companion_count) {
    std::ostringstream os;
    os << "count(G ⊎ H) = " << union_count << " but count(G) + count(H) = "
       << base_count << " + " << companion_count;
    report_violation(report, Relation::kDisjointUnionAdditivity, os.str());
  }
}

void check_label_equivariance(const TestCase& c, Rng& rng,
                              MetamorphicReport& report,
                              std::uint64_t base_count) {
  if (!c.graph.is_labeled() || !c.pattern.is_labeled()) return;
  ++report.checked;
  // A random bijection over the full label byte range covers labels present
  // in either the graph or the pattern.
  std::vector<Label> mapping(kMaxLabels);
  std::iota(mapping.begin(), mapping.end(), Label{0});
  rng.shuffle(mapping);
  const Graph mapped_graph = map_label_values(c.graph, mapping);
  std::vector<Label> pattern_labels = c.pattern.label_vector();
  for (Label& l : pattern_labels) l = mapping[l];
  const Pattern mapped_pattern = c.pattern.with_labels(pattern_labels);
  const std::uint64_t got = count(mapped_graph, mapped_pattern, c.plan);
  if (got != base_count) {
    std::ostringstream os;
    os << "label bijection changed the count " << base_count << " -> " << got;
    report_violation(report, Relation::kLabelEquivariance, os.str());
  }
}

void check_automorphism_divisibility(const TestCase& c,
                                     MetamorphicReport& report) {
  ++report.checked;
  PlanOptions embeddings = c.plan;
  embeddings.count_mode = CountMode::kEmbeddings;
  PlanOptions unique = c.plan;
  unique.count_mode = CountMode::kUniqueSubgraphs;
  const std::uint64_t emb = count(c.graph, c.pattern, embeddings);
  const std::uint64_t uniq = count(c.graph, c.pattern, unique);
  const std::uint64_t aut = automorphisms(c.pattern).size();
  if (emb != uniq * aut) {
    std::ostringstream os;
    os << "embeddings = " << emb << " but unique x |Aut| = " << uniq << " x "
       << aut;
    report_violation(report, Relation::kAutomorphismDivisibility, os.str());
  }
}

void check_deletion_consistency(const TestCase& c, Rng& rng,
                                MetamorphicReport& report,
                                std::uint64_t base_count) {
  if (c.plan.induced != Induced::kEdge || c.pattern.size() < 2) return;
  if (c.graph.num_edges() == 0) return;
  ++report.checked;
  // Pick a uniformly random undirected edge via the adjacency arrays.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < c.graph.num_vertices(); ++u)
    for (VertexId v : c.graph.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  const auto [u, v] = edges[rng.next_below(edges.size())];

  MutableGraph mutable_graph(c.graph);
  auto from = mutable_graph.snapshot();
  UpdateBatch batch;
  batch.deletions = {{u, v}};
  ApplyResult applied = mutable_graph.apply(batch);

  IncrementalOptions opts;
  opts.plan = c.plan;
  const IncrementalMatcher matcher(c.pattern, opts);
  const std::int64_t delta = matcher.count_delta(from, applied.applied).delta;
  const std::uint64_t after =
      count(applied.snapshot->compacted(), c.pattern, c.plan);
  if (static_cast<std::int64_t>(base_count) + delta !=
      static_cast<std::int64_t>(after)) {
    std::ostringstream os;
    os << "deleting edge " << u << "-" << v << ": count " << base_count
       << " + delta " << delta << " != recount " << after;
    report_violation(report, Relation::kDeletionConsistency, os.str());
  }
}

}  // namespace

MetamorphicReport check_metamorphic(const TestCase& c, std::uint64_t seed) {
  STM_CHECK(c.pattern.size() >= 1);
  MetamorphicReport report;
  Rng rng(seed);
  const std::uint64_t base_count = count(c.graph, c.pattern, c.plan);
  check_relabel_invariance(c, rng, report, base_count);
  check_disjoint_union(c, rng, report, base_count);
  check_label_equivariance(c, rng, report, base_count);
  check_automorphism_divisibility(c, report);
  check_deletion_consistency(c, rng, report, base_count);
  return report;
}

bool metamorphic_violated(const TestCase& c, std::uint64_t seed) {
  return !check_metamorphic(c, seed).ok();
}

std::string MetamorphicReport::describe() const {
  std::ostringstream os;
  os << (ok() ? "OK" : "VIOLATED") << " (" << checked << " relation instances"
     << ")\n";
  for (const std::string& v : violations) os << "  " << v << "\n";
  return os.str();
}

}  // namespace stm::harness
