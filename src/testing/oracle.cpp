#include "testing/oracle.hpp"

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string_view>

#include "baselines/reference.hpp"
#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "core/recursive.hpp"
#include "dist/sharded.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "pattern/matching_order.hpp"
#include "util/check.hpp"

namespace stm::harness {

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kReference:
      return "reference";
    case EngineKind::kRecursive:
      return "recursive";
    case EngineKind::kHost:
      return "host";
    case EngineKind::kSimt:
      return "simt";
    case EngineKind::kIncremental:
      return "incremental";
    case EngineKind::kSharded:
      return "sharded";
  }
  return "unknown";
}

namespace {

bool sabotage_host_off_by_one() {
  const char* mode = std::getenv("STMATCH_FUZZ_SABOTAGE");
  return mode != nullptr && std::string_view(mode) == "host_off_by_one";
}

/// Replays c.graph as a single insertion batch over an edgeless base with
/// the same vertices and labels: count must equal 0 + delta.
std::uint64_t incremental_replay(const TestCase& c) {
  const Graph& g = c.graph;
  Graph empty(std::vector<EdgeId>(static_cast<std::size_t>(g.num_vertices()) + 1, 0),
              {}, g.labels());
  MutableGraph mutable_graph(std::move(empty));

  IncrementalOptions opts;
  opts.plan = c.plan;
  opts.engine = DeltaEngine::kHost;
  IncrementalMatcher matcher(c.pattern, opts);

  UpdateBatch batch;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) batch.insertions.emplace_back(u, v);

  auto from = mutable_graph.snapshot();
  if (batch.insertions.empty()) {
    return 0;  // edgeless graph: connected patterns with >= 2 vertices
               // cannot embed, and the delta of an empty batch is zero
  }
  ApplyResult applied = mutable_graph.apply(batch);
  const DeltaMatchResult d = matcher.count_delta(from, applied.applied);
  STM_CHECK_MSG(d.delta >= 0, "replay over an empty base produced a negative"
                              " delta of " << d.delta);
  return static_cast<std::uint64_t>(d.delta);
}

}  // namespace

OracleReport run_oracle(const TestCase& c, const OracleOptions& opts) {
  STM_CHECK_MSG(c.pattern.size() >= 1, "test case has an empty pattern");
  OracleReport report;

  const ReferenceOptions ref_opts{c.plan.induced, c.plan.count_mode};
  const GraphView view(c.graph);
  report.expected = reference_count(view, c.pattern, ref_opts);
  report.counts.push_back({EngineKind::kReference, report.expected});

  const MatchingPlan plan(reorder_for_matching(c.pattern), c.plan);
  const std::uint64_t recursive =
      recursive_count_range(view, plan, 0, c.graph.num_vertices());
  report.counts.push_back({EngineKind::kRecursive, recursive});

  if (opts.run_host) {
    std::uint64_t host = host_match(view, plan, c.host).count;
    // Test-only sabotage (see header): exercises detection + minimization.
    if (host > 0 && sabotage_host_off_by_one()) ++host;
    report.counts.push_back({EngineKind::kHost, host});
  } else {
    report.skipped.push_back(EngineKind::kHost);
  }

  if (opts.run_simt) {
    report.counts.push_back(
        {EngineKind::kSimt, stmatch_match(view, plan, c.simt).count});
  } else {
    report.skipped.push_back(EngineKind::kSimt);
  }

  // The incremental path cannot express vertex-induced semantics (an
  // induced match can flip without containing a delta edge) and needs an
  // anchorable edge, i.e. a pattern of >= 2 vertices.
  if (opts.run_incremental && c.plan.induced == Induced::kEdge &&
      c.pattern.size() >= 2 &&
      c.graph.num_edges() <= opts.incremental_max_edges) {
    report.counts.push_back({EngineKind::kIncremental, incremental_replay(c)});
  } else {
    report.skipped.push_back(EngineKind::kIncremental);
  }

  // Sharded coordinator lane: the cut-edge decomposition shares the
  // incremental path's edge-induced-only restriction; num_vertices > 0 is a
  // partition precondition.
  if (opts.run_sharded && c.plan.induced == Induced::kEdge &&
      c.graph.num_vertices() > 0 &&
      c.graph.num_edges() <= opts.sharded_max_edges) {
    dist::PartitionConfig pcfg;
    pcfg.num_shards = c.num_shards;
    pcfg.strategy = c.shard_strategy;
    const dist::ShardedOptions sharded_opts = [&] {
      dist::ShardedOptions o;
      o.plan = c.plan;
      o.local_engine = dist::LocalEngine::kHost;
      o.host = c.host;
      return o;
    }();
    const dist::ShardedResult r =
        dist::sharded_match(c.graph, c.pattern, pcfg, sharded_opts);
    STM_CHECK_MSG(r.status == QueryStatus::kOk,
                  "sharded lane failed: " << r.error);
    report.counts.push_back({EngineKind::kSharded, r.count});
  } else {
    report.skipped.push_back(EngineKind::kSharded);
  }

  for (const EngineCount& e : report.counts)
    if (e.count != report.expected) report.agreed = false;
  return report;
}

bool oracle_disagrees(const TestCase& c) { return !run_oracle(c).agreed; }

std::string OracleReport::describe() const {
  std::ostringstream os;
  os << (agreed ? "AGREED" : "DISAGREED") << " expected=" << expected << "\n";
  for (const EngineCount& e : counts) {
    os << "  " << to_string(e.engine) << " = " << e.count
       << (e.count == expected ? "" : "   <-- MISMATCH") << "\n";
  }
  for (const EngineKind k : skipped) os << "  " << to_string(k) << " skipped\n";
  return os.str();
}

}  // namespace stm::harness
