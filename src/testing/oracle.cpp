#include "testing/oracle.hpp"

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string_view>

#include <algorithm>

#include "baselines/reference.hpp"
#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "core/recursive.hpp"
#include "dist/sharded.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "mqo/evaluator.hpp"
#include "mqo/pattern_index.hpp"
#include "pattern/matching_order.hpp"
#include "stream/delta_stream.hpp"
#include "service/service.hpp"
#include "service/stream.hpp"
#include "setops/simd.hpp"
#include "storage/store.hpp"
#include "util/check.hpp"

namespace stm::harness {

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kReference:
      return "reference";
    case EngineKind::kRecursive:
      return "recursive";
    case EngineKind::kHost:
      return "host";
    case EngineKind::kSimt:
      return "simt";
    case EngineKind::kIncremental:
      return "incremental";
    case EngineKind::kSharded:
      return "sharded";
    case EngineKind::kStream:
      return "stream";
    case EngineKind::kStorage:
      return "storage";
    case EngineKind::kMqo:
      return "mqo";
  }
  return "unknown";
}

namespace {

bool sabotage_host_off_by_one() {
  const char* mode = std::getenv("STMATCH_FUZZ_SABOTAGE");
  return mode != nullptr && std::string_view(mode) == "host_off_by_one";
}

/// Replays c.graph as a single insertion batch over an edgeless base with
/// the same vertices and labels: count must equal 0 + delta.
std::uint64_t incremental_replay(const TestCase& c) {
  const Graph& g = c.graph;
  Graph empty(std::vector<EdgeId>(static_cast<std::size_t>(g.num_vertices()) + 1, 0),
              {}, g.labels());
  MutableGraph mutable_graph(std::move(empty));

  IncrementalOptions opts;
  opts.plan = c.plan;
  opts.engine = DeltaEngine::kHost;
  IncrementalMatcher matcher(c.pattern, opts);

  UpdateBatch batch;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) batch.insertions.emplace_back(u, v);

  auto from = mutable_graph.snapshot();
  if (batch.insertions.empty()) {
    return 0;  // edgeless graph: connected patterns with >= 2 vertices
               // cannot embed, and the delta of an empty batch is zero
  }
  ApplyResult applied = mutable_graph.apply(batch);
  const DeltaMatchResult d = matcher.count_delta(from, applied.applied);
  STM_CHECK_MSG(d.delta >= 0, "replay over an empty base produced a negative"
                              " delta of " << d.delta);
  return static_cast<std::uint64_t>(d.delta);
}

/// Streamed-embedding lane: for each stream engine the service's drained
/// embedding sequence must be bit-identical (the global order is a pure
/// function of the plan), the multiset must equal the brute-force reference
/// enumeration, and a paged host cursor must concatenate to the full stream
/// with no duplicate or loss. Failures append notes and flip `agreed`.
void run_stream_lane(const TestCase& c, OracleReport* report) {
  using ServiceEngine = ::stm::EngineKind;

  SessionConfig scfg;
  scfg.max_open_streams = 0;  // the lane opens its streams one at a time
  GraphSession session(Graph(c.graph), scfg);

  const auto base_req = [&c](ServiceEngine kind) {
    QueryRequest q;
    q.pattern = c.pattern;
    q.plan = c.plan;
    q.engine = kind;
    q.host = c.host;
    q.simt = c.simt;
    // The stream owns the outer-loop range knobs; chaos is its own suite.
    q.host.v_begin = 0;
    q.host.fault = FaultConfig{};
    q.simt.v_begin = 0;
    q.simt.v_end = 0;
    q.simt.v_stride = 1;
    q.simt.pin_v1 = kNoVertex;
    q.simt.fault = FaultConfig{};
    return q;
  };
  const auto fail = [report](std::string note) {
    report->agreed = false;
    report->notes.push_back(std::move(note));
  };

  const ServiceEngine kinds[] = {ServiceEngine::kReference,
                                 ServiceEngine::kHost, ServiceEngine::kSimt};
  std::vector<std::vector<Embedding>> streams;
  for (const ServiceEngine kind : kinds) {
    StreamRequest sreq;
    sreq.query = base_req(kind);
    auto s = session.open_stream(std::move(sreq));
    std::vector<Embedding> drained;
    Embedding e;
    while (s->next(&e)) drained.push_back(std::move(e));
    const QueryResult& r = s->result();
    if (!r.ok()) {
      fail(std::string("stream lane: ") + ::stm::to_string(kind) +
           " stream failed: " + r.error);
      return;
    }
    streams.push_back(std::move(drained));
  }

  report->counts.push_back(
      {EngineKind::kStream, static_cast<std::uint64_t>(streams[0].size())});

  for (std::size_t k = 1; k < streams.size(); ++k) {
    if (streams[k] == streams[0]) continue;
    std::size_t at = 0;
    while (at < streams[0].size() && at < streams[k].size() &&
           streams[0][at] == streams[k][at])
      ++at;
    std::ostringstream os;
    os << "stream lane: " << ::stm::to_string(kinds[k])
       << " stream diverges from reference stream at position " << at
       << " (lengths " << streams[k].size() << " vs " << streams[0].size()
       << ")";
    fail(os.str());
    return;
  }

  // Multiset check against the brute-force enumerator (which shares no
  // candidate-set machinery with the streams). Only kEmbeddings: under
  // kUniqueSubgraphs the stream carries symmetry-broken representatives,
  // which the reference does not define in the same vertex order.
  if (c.plan.count_mode == CountMode::kEmbeddings) {
    const std::vector<std::size_t> order = matching_order(c.pattern);
    std::vector<Embedding> ref;
    std::vector<VertexId> orig(c.pattern.size());
    reference_enumerate(GraphView(c.graph), c.pattern,
                        {c.plan.induced, c.plan.count_mode},
                        [&](const std::vector<VertexId>& m) {
                          for (std::size_t i = 0; i < order.size(); ++i)
                            orig[order[i]] = m[i];
                          ref.push_back(orig);
                        });
    std::vector<Embedding> got = streams[0];
    std::sort(ref.begin(), ref.end());
    std::sort(got.begin(), got.end());
    if (got != ref) {
      std::ostringstream os;
      os << "stream lane: streamed multiset (" << got.size()
         << " embeddings) differs from the reference enumeration ("
         << ref.size() << ")";
      fail(os.str());
      return;
    }
  }

  // Cursor lane: drain the host stream again in pages; token resumption
  // must concatenate to the full stream, no duplicate, no loss.
  const std::uint64_t total = streams[0].size();
  const std::uint64_t page = std::max<std::uint64_t>(1, (total + 2) / 3);
  std::vector<Embedding> paged;
  std::string token;
  for (;;) {
    StreamRequest sreq;
    sreq.query = base_req(ServiceEngine::kHost);
    sreq.stream.limit = page;
    sreq.stream.resume_token = token;
    auto s = session.open_stream(std::move(sreq));
    Embedding e;
    std::uint64_t got = 0;
    while (s->next(&e)) {
      paged.push_back(std::move(e));
      ++got;
    }
    const QueryResult& r = s->result();
    if (!r.ok()) {
      fail("stream lane: cursor page failed: " + r.error);
      return;
    }
    token = s->resume_token();
    if (token.empty()) break;
    if (got == 0 || paged.size() > total) {
      fail("stream lane: cursor failed to make progress (delivered " +
           std::to_string(paged.size()) + " of " + std::to_string(total) +
           " with a non-empty resume token)");
      return;
    }
  }
  if (paged != streams[0]) {
    fail("stream lane: cursor pages concatenate to " +
         std::to_string(paged.size()) + " embeddings, full stream has " +
         std::to_string(streams[0].size()));
  }
}

/// Storage lane: rebuilds c.graph under the case's sampled backend and
/// re-runs the optimized engines over the store-backed view. The backend is
/// supposed to be invisible behind the GraphView seam, so every count must
/// equal the raw-CSR count and the reference enumeration must visit the
/// same embeddings in the same order. Spill cases run under the sampled
/// tiny budget with small pages, so eviction churns even on fuzz-sized
/// graphs.
void run_storage_lane(const TestCase& c, const MatchingPlan& plan,
                      std::uint64_t enumerate_cap, OracleReport* report) {
  storage::StoragePolicy policy;
  policy.backend = c.storage_backend;
  if (c.storage_backend == storage::Backend::kSpill) {
    policy.memory_budget_bytes = c.storage_budget_bytes;
    policy.page_size = 256;
  }
  const auto store = storage::GraphStore::build(Graph(c.graph), policy);
  const auto lease = store->lease();
  const GraphView view = store->view();

  const std::uint64_t host = host_match(view, plan, c.host).count;
  report->counts.push_back({EngineKind::kStorage, host});

  const auto fail = [report](std::string note) {
    report->agreed = false;
    report->notes.push_back(std::move(note));
  };
  const std::uint64_t recursive =
      recursive_count_range(view, plan, 0, c.graph.num_vertices());
  if (recursive != report->expected) {
    fail("storage lane: recursive engine counted " + std::to_string(recursive) +
         " over the " + storage::to_string(c.storage_backend) +
         " backend, raw CSR gives " + std::to_string(report->expected));
  }
  const std::uint64_t simt = stmatch_match(view, plan, c.simt).count;
  if (simt != report->expected) {
    fail("storage lane: simt engine counted " + std::to_string(simt) +
         " over the " + storage::to_string(c.storage_backend) +
         " backend, raw CSR gives " + std::to_string(report->expected));
  }

  // Enumeration order, not just counts: the store must serve every neighbor
  // list identically, and the reference enumerator's visit order is a pure
  // function of those lists.
  if (report->expected <= enumerate_cap) {
    const ReferenceOptions ref_opts{c.plan.induced, c.plan.count_mode};
    std::vector<Embedding> raw, stored;
    reference_enumerate(GraphView(c.graph), c.pattern, ref_opts,
                        [&](const std::vector<VertexId>& m) { raw.push_back(m); });
    reference_enumerate(view, c.pattern, ref_opts,
                        [&](const std::vector<VertexId>& m) {
                          stored.push_back(m);
                        });
    if (raw != stored) {
      std::size_t at = 0;
      while (at < raw.size() && at < stored.size() && raw[at] == stored[at])
        ++at;
      fail("storage lane: enumeration over the " +
           std::string(storage::to_string(c.storage_backend)) +
           " backend diverges from the raw CSR at position " +
           std::to_string(at) + " (lengths " + std::to_string(stored.size()) +
           " vs " + std::to_string(raw.size()) + ")");
    }
  }
}

/// Multi-query lane: the case pattern plus its sampled mqo_patterns all
/// registered in one shared-prefix PatternIndex, evaluated in a single trie
/// pass by replaying c.graph as one insertion batch over an edgeless base.
/// Each registration's indexed delta must equal its own
/// IncrementalMatcher's delta and the brute-force count of the full graph;
/// registrations cheap enough to collect must reproduce DeltaStreamer's
/// embedding lists bit for bit. Failures append notes and flip `agreed`.
void run_mqo_lane(const TestCase& c, const OracleOptions& opts,
                  OracleReport* report) {
  const auto fail = [report](std::string note) {
    report->agreed = false;
    report->notes.push_back(std::move(note));
  };

  std::vector<Pattern> patterns;
  patterns.push_back(c.pattern);
  patterns.insert(patterns.end(), c.mqo_patterns.begin(),
                  c.mqo_patterns.end());

  // Per-registration ground truth first: it also decides which
  // registrations are cheap enough to collect embeddings for.
  PlanOptions lane_plan = c.plan;  // induced == kEdge (lane precondition)
  std::vector<std::uint64_t> expected;
  std::vector<bool> collect;
  for (const Pattern& p : patterns) {
    expected.push_back(reference_count(GraphView(c.graph), p,
                                       {lane_plan.induced,
                                        lane_plan.count_mode}));
    collect.push_back(lane_plan.count_mode == CountMode::kEmbeddings &&
                      expected.back() <= opts.mqo_max_matches);
  }

  mqo::PatternIndex index;
  for (std::size_t i = 0; i < patterns.size(); ++i)
    index.add(i + 1, patterns[i], lane_plan, collect[i]);

  const Graph& g = c.graph;
  Graph empty(
      std::vector<EdgeId>(static_cast<std::size_t>(g.num_vertices()) + 1, 0),
      {}, g.labels());
  MutableGraph mutable_graph(std::move(empty));
  UpdateBatch batch;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.neighbors(u))
      if (u < v) batch.insertions.emplace_back(u, v);

  auto from = mutable_graph.snapshot();
  mqo::EvalResult res;
  DeltaEdges applied;
  if (!batch.insertions.empty()) applied = mutable_graph.apply(batch).applied;
  res = mqo::MultiQueryEvaluator(index).evaluate(from, applied);

  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const mqo::QueryDelta qd = index.project(i + 1, res);
    const std::string who =
        "mqo lane: registration " + std::to_string(i) + " (" +
        patterns[i].to_string() + ")";
    if (qd.delta < 0 ||
        static_cast<std::uint64_t>(qd.delta) != expected[i]) {
      fail(who + " indexed delta " + std::to_string(qd.delta) +
           " != reference count " + std::to_string(expected[i]));
      continue;
    }
    IncrementalOptions iopts;
    iopts.plan = lane_plan;
    const IncrementalMatcher matcher(patterns[i], iopts);
    const std::int64_t loop = applied.empty()
                                  ? 0
                                  : matcher.count_delta(from, applied).delta;
    if (qd.delta != loop) {
      fail(who + " indexed delta " + std::to_string(qd.delta) +
           " != per-pattern delta " + std::to_string(loop));
      continue;
    }
    if (collect[i]) {
      stream::DeltaBatch sb;
      if (!applied.empty()) {
        sb = stream::DeltaStreamer(patterns[i], lane_plan)
                 .delta(from, applied);
      }
      if (qd.added != sb.added || qd.retracted != sb.retracted) {
        fail(who + " collected " + std::to_string(qd.added.size()) + "+/" +
             std::to_string(qd.retracted.size()) +
             "- embeddings, DeltaStreamer has " +
             std::to_string(sb.added.size()) + "+/" +
             std::to_string(sb.retracted.size()) + "-");
      }
    }
  }

  // The lane's vote: the case pattern's indexed count over the replay.
  const std::int64_t own = index.project(1, res).delta;
  report->counts.push_back(
      {EngineKind::kMqo,
       own >= 0 ? static_cast<std::uint64_t>(own) : ~std::uint64_t{0}});
}

}  // namespace

OracleReport run_oracle(const TestCase& c, const OracleOptions& opts) {
  STM_CHECK_MSG(c.pattern.size() >= 1, "test case has an empty pattern");
  // ISA lane: the whole oracle (every engine, every storage backend) runs
  // under the case's sampled kernel table, so every cross-engine agreement
  // check doubles as a SIMD-vs-scalar bit-exactness proof on whole-query
  // counts. Case generation samples the knob machine-independently; a level
  // this build or CPU lacks degrades to the auto dispatch here.
  simd::IsaChoice isa_choice = c.forced_isa;
  if (isa_choice != simd::IsaChoice::kAuto &&
      !simd::is_supported(static_cast<simd::IsaLevel>(
          static_cast<std::uint8_t>(isa_choice) - 1)))
    isa_choice = simd::IsaChoice::kAuto;
  const simd::ScopedForceIsa forced_isa(isa_choice);

  OracleReport report;

  const ReferenceOptions ref_opts{c.plan.induced, c.plan.count_mode};
  const GraphView view(c.graph);
  report.expected = reference_count(view, c.pattern, ref_opts);
  report.counts.push_back({EngineKind::kReference, report.expected});

  const MatchingPlan plan(reorder_for_matching(c.pattern), c.plan);
  const std::uint64_t recursive =
      recursive_count_range(view, plan, 0, c.graph.num_vertices());
  report.counts.push_back({EngineKind::kRecursive, recursive});

  if (opts.run_host) {
    std::uint64_t host = host_match(view, plan, c.host).count;
    // Test-only sabotage (see header): exercises detection + minimization.
    if (host > 0 && sabotage_host_off_by_one()) ++host;
    report.counts.push_back({EngineKind::kHost, host});
  } else {
    report.skipped.push_back(EngineKind::kHost);
  }

  if (opts.run_simt) {
    report.counts.push_back(
        {EngineKind::kSimt, stmatch_match(view, plan, c.simt).count});
  } else {
    report.skipped.push_back(EngineKind::kSimt);
  }

  // The incremental path cannot express vertex-induced semantics (an
  // induced match can flip without containing a delta edge) and needs an
  // anchorable edge, i.e. a pattern of >= 2 vertices.
  if (opts.run_incremental && c.plan.induced == Induced::kEdge &&
      c.pattern.size() >= 2 &&
      c.graph.num_edges() <= opts.incremental_max_edges) {
    report.counts.push_back({EngineKind::kIncremental, incremental_replay(c)});
  } else {
    report.skipped.push_back(EngineKind::kIncremental);
  }

  // Sharded coordinator lane: the cut-edge decomposition shares the
  // incremental path's edge-induced-only restriction; num_vertices > 0 is a
  // partition precondition.
  if (opts.run_sharded && c.plan.induced == Induced::kEdge &&
      c.graph.num_vertices() > 0 &&
      c.graph.num_edges() <= opts.sharded_max_edges) {
    dist::PartitionConfig pcfg;
    pcfg.num_shards = c.num_shards;
    pcfg.strategy = c.shard_strategy;
    const dist::ShardedOptions sharded_opts = [&] {
      dist::ShardedOptions o;
      o.plan = c.plan;
      o.local_engine = dist::LocalEngine::kHost;
      o.host = c.host;
      return o;
    }();
    const dist::ShardedResult r =
        dist::sharded_match(c.graph, c.pattern, pcfg, sharded_opts);
    STM_CHECK_MSG(r.status == QueryStatus::kOk,
                  "sharded lane failed: " << r.error);
    report.counts.push_back({EngineKind::kSharded, r.count});
  } else {
    report.skipped.push_back(EngineKind::kSharded);
  }

  // Stream lane: drains full embedding streams through the service layer,
  // so it materializes every match several times over — bounded by the
  // expected count, which is already known at this point.
  if (opts.run_stream && c.graph.num_vertices() > 0 &&
      report.expected <= opts.stream_max_matches) {
    run_stream_lane(c, &report);
  } else {
    report.skipped.push_back(EngineKind::kStream);
  }

  // Storage lane: cases that sampled the raw backend skip it (the store
  // would be byte-for-byte the CSR already compared above).
  if (opts.run_storage &&
      c.storage_backend != storage::Backend::kUncompressed) {
    run_storage_lane(c, plan, opts.stream_max_matches, &report);
  } else {
    report.skipped.push_back(EngineKind::kStorage);
  }

  // Multi-query lane: shares the incremental path's preconditions (anchored,
  // edge-induced, >= 2 pattern vertices) and its per-delta-edge cost shape.
  if (opts.run_mqo && c.plan.induced == Induced::kEdge &&
      c.pattern.size() >= 2 && c.graph.num_edges() <= opts.mqo_max_edges) {
    run_mqo_lane(c, opts, &report);
  } else {
    report.skipped.push_back(EngineKind::kMqo);
  }

  for (const EngineCount& e : report.counts)
    if (e.count != report.expected) report.agreed = false;
  return report;
}

bool oracle_disagrees(const TestCase& c) { return !run_oracle(c).agreed; }

std::string OracleReport::describe() const {
  std::ostringstream os;
  os << (agreed ? "AGREED" : "DISAGREED") << " expected=" << expected << "\n";
  for (const EngineCount& e : counts) {
    os << "  " << to_string(e.engine) << " = " << e.count
       << (e.count == expected ? "" : "   <-- MISMATCH") << "\n";
  }
  for (const EngineKind k : skipped) os << "  " << to_string(k) << " skipped\n";
  for (const std::string& n : notes) os << "  note: " << n << "\n";
  return os.str();
}

}  // namespace stm::harness
