// Metamorphic conformance relations.
//
// Where the differential oracle checks that independent executors agree on
// one input, the metamorphic layer checks that the counts respect the
// algebra of graph isomorphism — properties that hold for *any* correct
// matcher, no second implementation required:
//
//   relabel-invariance      count(π(G), Q) = count(G, Q) for any vertex
//                           relabeling π (exercised via graph/reorder and
//                           random permutations)
//   disjoint-union          count(G ⊎ H, Q) = count(G, Q) + count(H, Q)
//   additivity              for connected Q
//   label equivariance      count(σ(G), σ(Q)) = count(G, Q) for any label
//                           bijection σ
//   automorphism            embeddings(G, Q) = unique(G, Q) · |Aut(Q)|
//   divisibility
//   deletion consistency    count(G) + Δ(delete e) = count(G \ e), with Δ
//                           from the IncrementalMatcher (edge-induced only)
//
// A violation pinpoints a bug even when every engine shares it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testing/workload.hpp"

namespace stm::harness {

enum class Relation : std::uint8_t {
  kRelabelInvariance = 0,
  kDisjointUnionAdditivity,
  kLabelEquivariance,
  kAutomorphismDivisibility,
  kDeletionConsistency,
};
inline constexpr std::size_t kNumRelations = 5;

const char* to_string(Relation relation);

struct MetamorphicReport {
  /// Individual relation instances evaluated (a skipped relation counts 0).
  std::uint64_t checked = 0;
  /// One human-readable line per violated instance.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string describe() const;
};

/// Checks every applicable relation on `c`. `seed` drives the randomized
/// choices (which permutation, which companion graph, which deleted edge) so
/// a report is reproducible from (case, seed).
///
/// Counts are produced by the sequential recursive executor — engine
/// cross-agreement is the differential oracle's job; this layer only needs
/// one trusted counter on both sides of each relation. The same test-only
/// STMATCH_FUZZ_SABOTAGE hook as the oracle supports
/// `metamorphic_off_by_one`, which perturbs that counter so the relation
/// checks themselves can be exercised.
MetamorphicReport check_metamorphic(const TestCase& c, std::uint64_t seed);

/// Minimizer predicate: true iff check_metamorphic(c, seed) finds a
/// violation.
bool metamorphic_violated(const TestCase& c, std::uint64_t seed);

}  // namespace stm::harness
