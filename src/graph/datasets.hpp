// Seeded synthetic proxies for the paper's SNAP datasets.
//
// The original evaluation uses WikiVote, Enron, YouTube, MiCo, LiveJournal,
// Orkut and Friendster. Those graphs (10^5..10^9 edges) were enumerated on an
// RTX 3090; this reproduction runs on one CPU core, so each dataset is
// replaced by a *scaled-down* power-law proxy that preserves the properties
// the evaluation depends on:
//   * heavy-tailed degree skew (Barabási–Albert / RMAT),
//   * the relative size ordering WikiVote < Enron < YouTube < MiCo < LJ <
//     Orkut < Friendster,
//   * density contrasts (WikiVote small & dense, Enron sparser, ...),
//   * median degree well below the warp width of 32 (drives the paper's
//     thread-underutilization argument),
// while capping the maximum degree so that unlabeled size-7 enumeration
// finishes in milliseconds-to-seconds per query. DESIGN.md §2 documents the
// substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace stm {

/// Returns a copy of g where every vertex degree is at most `cap`; excess
/// edges are removed deterministically (seeded random choice among the
/// incident edges of oversized vertices).
Graph cap_degrees(const Graph& g, EdgeId cap, std::uint64_t seed);

/// Identifiers of the seven dataset proxies, in the paper's size order.
const std::vector<std::string>& dataset_names();

/// Builds a dataset proxy by name (unlabeled). `scale` multiplies the vertex
/// count (1.0 = default benchmark size). Throws on unknown name.
Graph make_dataset(const std::string& name, double scale = 1.0);

/// Labeled variant: the same graph with `num_labels` seeded uniform labels
/// (paper setup: 10 labels).
Graph make_labeled_dataset(const std::string& name, double scale = 1.0,
                           std::size_t num_labels = 10);

/// The slab capacity used when reporting the Table I "deg > cap" column.
/// The paper uses 4096 at full scale; proxies use a proportionally scaled cap.
EdgeId dataset_report_cap();

/// Heavy-skew variant used by the load-balancing experiments (paper Fig. 12):
/// a smaller, hub-heavier proxy (degree cap 96 instead of ~32) whose hub
/// subtrees are large enough for work stealing to matter at proxy scale.
/// Valid names: "enron", "youtube", "mico", "livejournal", "orkut".
Graph make_skewed_dataset(const std::string& name, double scale = 1.0,
                          std::size_t num_labels = 0);

}  // namespace stm
