// Connected components and related diagnostics.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace stm {

/// Component id per vertex (ids are 0-based, assigned in discovery order).
std::vector<VertexId> connected_components(const Graph& g);

/// Number of connected components (0 for an empty graph).
std::size_t num_components(const Graph& g);

/// Size of the largest connected component.
std::size_t largest_component_size(const Graph& g);

/// The subgraph induced by the largest component, relabeled compactly.
/// Labels are preserved.
Graph largest_component(const Graph& g);

}  // namespace stm
