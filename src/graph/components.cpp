#include "graph/components.hpp"

#include <algorithm>
#include <deque>

namespace stm {

std::vector<VertexId> connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  constexpr VertexId kUnassigned = ~VertexId{0};
  std::vector<VertexId> component(n, kUnassigned);
  VertexId next_id = 0;
  std::deque<VertexId> queue;
  for (VertexId seed = 0; seed < n; ++seed) {
    if (component[seed] != kUnassigned) continue;
    component[seed] = next_id;
    queue.push_back(seed);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      for (VertexId u : g.neighbors(v)) {
        if (component[u] == kUnassigned) {
          component[u] = next_id;
          queue.push_back(u);
        }
      }
    }
    ++next_id;
  }
  return component;
}

std::size_t num_components(const Graph& g) {
  auto component = connected_components(g);
  VertexId max_id = 0;
  for (VertexId c : component) max_id = std::max(max_id, c + 1);
  return max_id;
}

std::size_t largest_component_size(const Graph& g) {
  auto component = connected_components(g);
  std::vector<std::size_t> sizes;
  for (VertexId c : component) {
    if (c >= sizes.size()) sizes.resize(c + 1, 0);
    ++sizes[c];
  }
  std::size_t best = 0;
  for (auto s : sizes) best = std::max(best, s);
  return best;
}

Graph largest_component(const Graph& g) {
  auto component = connected_components(g);
  std::vector<std::size_t> sizes;
  for (VertexId c : component) {
    if (c >= sizes.size()) sizes.resize(c + 1, 0);
    ++sizes[c];
  }
  VertexId best = 0;
  for (VertexId c = 0; c < sizes.size(); ++c)
    if (sizes[c] > sizes[best]) best = c;

  const VertexId n = g.num_vertices();
  constexpr VertexId kAbsent = ~VertexId{0};
  std::vector<VertexId> compact(n, kAbsent);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v)
    if (component[v] == best) compact[v] = next++;

  GraphBuilder b(next);
  std::vector<Label> labels;
  for (VertexId v = 0; v < n; ++v) {
    if (compact[v] == kAbsent) continue;
    if (g.is_labeled()) labels.push_back(g.label(v));
    for (VertexId u : g.neighbors(v))
      if (v < u && compact[u] != kAbsent) b.add_edge(compact[v], compact[u]);
  }
  Graph out = b.build();
  if (g.is_labeled()) out = out.with_labels(std::move(labels));
  return out;
}

}  // namespace stm
