// Fundamental identifier types shared across the library.
#pragma once

#include <cstdint>

namespace stm {

/// Data-graph vertex identifier.
using VertexId = std::uint32_t;
/// Edge index / adjacency offset (graphs can exceed 2^32 edge slots).
using EdgeId = std::uint64_t;
/// Vertex label. The paper's labeled experiments use 10 labels; we support
/// up to 64 so label sets fit in one machine word (merged multi-label sets).
using Label = std::uint8_t;

/// Maximum number of distinct labels (label masks are 64-bit).
inline constexpr std::size_t kMaxLabels = 64;

/// Maximum data-graph size accepted by builders and parsers. Leaves headroom
/// below the VertexId range so `id + 1` and CSR sizes never overflow, and
/// turns corrupt input (e.g. a stray timestamp parsed as a vertex id) into a
/// clear kInvalidArgument instead of an allocation of astronomical size.
inline constexpr VertexId kMaxVertices = 1u << 30;

/// Maximum query-pattern size. The paper evaluates up to 7 vertices; 8 keeps
/// pattern adjacency in a single byte row.
inline constexpr std::size_t kMaxPatternSize = 8;

/// Sentinel "no vertex" value (never a valid id: ids are < kMaxVertices).
inline constexpr VertexId kNoVertex = ~VertexId{0};

}  // namespace stm
