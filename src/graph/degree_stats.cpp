#include "graph/degree_stats.hpp"

#include <algorithm>

namespace stm {

DegreeStats compute_degree_stats(const Graph& g, EdgeId cap) {
  DegreeStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices == 0) return s;
  auto degs = degree_sequence(g);
  std::sort(degs.begin(), degs.end());
  s.max_degree = degs.back();
  const std::size_t n = degs.size();
  s.median_degree = (n % 2 == 1)
                        ? static_cast<double>(degs[n / 2])
                        : 0.5 * static_cast<double>(degs[n / 2 - 1] + degs[n / 2]);
  s.mean_degree =
      2.0 * static_cast<double>(s.num_edges) / static_cast<double>(n);
  std::size_t above = 0;
  for (EdgeId d : degs) above += (d > cap);
  s.frac_above_cap = static_cast<double>(above) / static_cast<double>(n);
  return s;
}

std::vector<EdgeId> degree_sequence(const Graph& g) {
  std::vector<EdgeId> degs(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) degs[v] = g.degree(v);
  return degs;
}

BalanceReport balance_report(const Graph& g,
                             const std::vector<std::uint32_t>& owner,
                             std::uint32_t num_shards) {
  STM_CHECK(num_shards >= 1);
  STM_CHECK(owner.size() == g.num_vertices());
  BalanceReport r;
  r.shards.resize(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) r.shards[s].shard = s;

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    STM_CHECK(owner[v] < num_shards);
    ++r.shards[owner[v]].vertices;
    for (VertexId w : g.neighbors(v)) {
      if (owner[w] == owner[v]) {
        // Counted from both endpoints; halve below.
        ++r.shards[owner[v]].intra_edges;
      } else {
        ++r.shards[owner[v]].incident_cut_edges;
        if (v < w) ++r.cut_edges;
      }
    }
  }
  for (ShardBalance& s : r.shards) s.intra_edges /= 2;

  if (g.num_edges() > 0) {
    r.cut_fraction = static_cast<double>(r.cut_edges) /
                     static_cast<double>(g.num_edges());
  }
  VertexId max_v = 0;
  double max_load = 0.0;
  double load_sum = 0.0;
  for (const ShardBalance& s : r.shards) {
    max_v = std::max(max_v, s.vertices);
    max_load = std::max(max_load, s.edge_load());
    load_sum += s.edge_load();
  }
  const double mean_v =
      static_cast<double>(g.num_vertices()) / static_cast<double>(num_shards);
  if (mean_v > 0.0) r.vertex_imbalance = static_cast<double>(max_v) / mean_v;
  const double mean_load = load_sum / static_cast<double>(num_shards);
  if (mean_load > 0.0) r.edge_imbalance = max_load / mean_load;
  return r;
}

}  // namespace stm
