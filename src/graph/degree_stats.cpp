#include "graph/degree_stats.hpp"

#include <algorithm>

namespace stm {

DegreeStats compute_degree_stats(const Graph& g, EdgeId cap) {
  DegreeStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices == 0) return s;
  auto degs = degree_sequence(g);
  std::sort(degs.begin(), degs.end());
  s.max_degree = degs.back();
  const std::size_t n = degs.size();
  s.median_degree = (n % 2 == 1)
                        ? static_cast<double>(degs[n / 2])
                        : 0.5 * static_cast<double>(degs[n / 2 - 1] + degs[n / 2]);
  s.mean_degree =
      2.0 * static_cast<double>(s.num_edges) / static_cast<double>(n);
  std::size_t above = 0;
  for (EdgeId d : degs) above += (d > cap);
  s.frac_above_cap = static_cast<double>(above) / static_cast<double>(n);
  return s;
}

std::vector<EdgeId> degree_sequence(const Graph& g) {
  std::vector<EdgeId> degs(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) degs[v] = g.degree(v);
  return degs;
}

}  // namespace stm
