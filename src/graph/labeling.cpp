#include "graph/labeling.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm {

std::vector<Label> random_labels(VertexId n, std::size_t num_labels,
                                 std::uint64_t seed) {
  STM_CHECK(num_labels >= 1 && num_labels <= kMaxLabels);
  Rng rng(seed);
  std::vector<Label> labels(n);
  for (auto& l : labels) l = static_cast<Label>(rng.next_below(num_labels));
  return labels;
}

Graph with_random_labels(const Graph& g, std::size_t num_labels,
                         std::uint64_t seed) {
  return g.with_labels(random_labels(g.num_vertices(), num_labels, seed));
}

Graph map_label_values(const Graph& g, const std::vector<Label>& mapping) {
  if (!g.is_labeled()) return g;
  std::vector<Label> labels(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Label l = g.label(v);
    STM_CHECK_MSG(l < mapping.size(),
                  "label " << static_cast<int>(l) << " not covered by mapping");
    STM_CHECK(mapping[l] < kMaxLabels);
    labels[v] = mapping[l];
  }
  return g.with_labels(std::move(labels));
}

std::vector<std::size_t> label_histogram(const Graph& g) {
  std::vector<std::size_t> hist(g.num_labels(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) ++hist[g.label(v)];
  return hist;
}

std::vector<std::vector<VertexId>> vertices_by_label(const Graph& g) {
  std::vector<std::vector<VertexId>> by_label(g.num_labels());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    by_label[g.label(v)].push_back(v);
  return by_label;
}

}  // namespace stm
