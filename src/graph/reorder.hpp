// Vertex reordering / relabeling.
//
// Degree-descending relabeling places hubs at small ids (improves locality
// of candidate sets and makes symmetry-breaking `<` constraints cheaper to
// satisfy early); BFS relabeling improves neighbor-list locality for
// traversal-heavy workloads. Both preserve the graph up to isomorphism, so
// match counts are invariant (tested).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace stm {

/// new id -> old id permutation orders.
enum class ReorderKind : std::uint8_t {
  kDegreeDescending,  // hubs first
  kDegreeAscending,   // leaves first
  kBfs,               // breadth-first from the max-degree vertex
};

/// Computes the permutation (perm[new_id] = old_id).
std::vector<VertexId> reorder_permutation(const Graph& g, ReorderKind kind);

/// Returns the relabeled graph (labels follow their vertices).
Graph apply_reorder(const Graph& g, const std::vector<VertexId>& perm);

/// Convenience: permutation + application.
Graph reorder_graph(const Graph& g, ReorderKind kind);

}  // namespace stm
