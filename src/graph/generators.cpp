#include "graph/generators.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm {

Graph make_erdos_renyi(VertexId n, double p, std::uint64_t seed) {
  STM_CHECK(p >= 0.0 && p <= 1.0);
  Rng rng(seed);
  GraphBuilder b(n);
  // Geometric skipping: expected O(n^2 p) work instead of n^2 coin flips.
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  auto pair_of = [n](std::uint64_t k) {
    // Invert the row-major index of the strict upper triangle.
    VertexId u = 0;
    std::uint64_t row_len = n - 1;
    while (k >= row_len) {
      k -= row_len;
      ++u;
      --row_len;
    }
    return std::pair<VertexId, VertexId>(u, u + 1 + static_cast<VertexId>(k));
  };
  if (p >= 1.0) {
    for (std::uint64_t k = 0; k < total; ++k) {
      auto [u, v] = pair_of(k);
      b.add_edge(u, v);
    }
  } else if (p > 0.0) {
    const double log1mp = std::log1p(-p);
    std::uint64_t k = 0;
    while (k < total) {
      const double r = rng.next_double();
      const auto skip =
          static_cast<std::uint64_t>(std::floor(std::log1p(-r) / log1mp));
      if (total - k <= skip) break;
      k += skip;
      auto [u, v] = pair_of(k);
      b.add_edge(u, v);
      ++k;
    }
  }
  return b.build();
}

Graph make_barabasi_albert(VertexId n, VertexId m, std::uint64_t seed) {
  STM_CHECK(m >= 1);
  STM_CHECK(n > m);
  Rng rng(seed);
  GraphBuilder b(n);
  // Target multiset: each entry appears once per incident edge endpoint, so
  // sampling from it is degree-proportional.
  std::vector<VertexId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * m * 2);
  // Seed clique on the first m+1 vertices.
  for (VertexId u = 0; u <= m; ++u) {
    for (VertexId v = u + 1; v <= m; ++v) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = m + 1; v < n; ++v) {
    std::vector<VertexId> targets;
    targets.reserve(m);
    while (targets.size() < m) {
      VertexId t = endpoints[rng.next_below(endpoints.size())];
      if (t == v) continue;
      bool dup = false;
      for (VertexId prev : targets) dup |= (prev == t);
      if (!dup) targets.push_back(t);
    }
    for (VertexId t : targets) {
      b.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return b.build();
}

Graph make_rmat(int scale, double edge_factor, double a, double b, double c,
                std::uint64_t seed) {
  STM_CHECK(scale >= 1 && scale < 31);
  const double d = 1.0 - a - b - c;
  STM_CHECK_MSG(d >= -1e-9, "RMAT probabilities must sum to <= 1");
  Rng rng(seed);
  const VertexId n = VertexId{1} << scale;
  const auto num_samples =
      static_cast<std::uint64_t>(edge_factor * static_cast<double>(n));
  GraphBuilder builder(n);
  for (std::uint64_t e = 0; e < num_samples; ++e) {
    VertexId u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    builder.add_edge(u, v);
  }
  return builder.build();
}

Graph make_clique(VertexId n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph make_cycle(VertexId n) {
  STM_CHECK(n >= 3);
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Graph make_star(VertexId leaves) {
  STM_CHECK(leaves >= 1);
  GraphBuilder b(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return b.build();
}

Graph make_path(VertexId n) {
  STM_CHECK(n >= 2);
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph make_complete_bipartite(VertexId a, VertexId b) {
  STM_CHECK(a >= 1 && b >= 1);
  GraphBuilder builder(a + b);
  for (VertexId u = 0; u < a; ++u)
    for (VertexId v = 0; v < b; ++v) builder.add_edge(u, a + v);
  return builder.build();
}

Graph make_grid(VertexId rows, VertexId cols) {
  STM_CHECK(rows >= 1 && cols >= 1);
  GraphBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

}  // namespace stm
