#include "graph/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/labeling.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stm {

Graph cap_degrees(const Graph& g, EdgeId cap, std::uint64_t seed) {
  STM_CHECK(cap >= 1);
  Rng rng(seed);
  // Adjacency as mutable sorted vectors; delete excess edges from the highest
  // degree vertices first so hubs shed load before their neighbors are
  // considered.
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    adj[v].assign(nbrs.begin(), nbrs.end());
  }
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return adj[a].size() > adj[b].size();
  });
  auto erase_directed = [&](VertexId from, VertexId to) {
    auto& lst = adj[from];
    auto it = std::find(lst.begin(), lst.end(), to);
    STM_CHECK(it != lst.end());
    lst.erase(it);
  };
  for (VertexId v : order) {
    while (adj[v].size() > cap) {
      const VertexId u = adj[v][rng.next_below(adj[v].size())];
      erase_directed(v, u);
      erase_directed(u, v);
    }
  }
  GraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId u : adj[v])
      if (v < u) b.add_edge(v, u);
  Graph capped = b.build();
  return g.is_labeled() ? capped.with_labels(g.labels()) : capped;
}

namespace {

struct ProxySpec {
  std::string name;
  enum Kind { kBa, kRmat } kind;
  VertexId n;          // base vertex count (BA) or 1<<scale (RMAT)
  VertexId ba_m;       // BA attachment count
  double rmat_ef;      // RMAT edge factor
  EdgeId degree_cap;   // post-generation cap
  std::uint64_t seed;
};

// Size ordering and density contrasts follow paper Table I; absolute sizes
// are scaled for single-core enumeration (see header comment).
const std::vector<ProxySpec>& proxy_specs() {
  static const std::vector<ProxySpec> specs = {
      {"wiki_vote", ProxySpec::kBa, 260, 6, 0.0, 26, 11},
      {"enron", ProxySpec::kBa, 700, 4, 0.0, 26, 22},
      {"youtube", ProxySpec::kRmat, 1024, 0, 3.5, 30, 33},
      {"mico", ProxySpec::kBa, 900, 5, 0.0, 34, 44},
      {"livejournal", ProxySpec::kBa, 1600, 5, 0.0, 38, 55},
      {"orkut", ProxySpec::kBa, 2200, 6, 0.0, 44, 66},
      {"friendster", ProxySpec::kRmat, 4096, 0, 2.5, 48, 77},
  };
  return specs;
}

const ProxySpec& find_spec(const std::string& name) {
  for (const auto& s : proxy_specs())
    if (s.name == name) return s;
  STM_CHECK_MSG(false, "unknown dataset: " << name);
  __builtin_unreachable();
}

}  // namespace

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& s : proxy_specs()) v.push_back(s.name);
    return v;
  }();
  return names;
}

namespace {

/// Plants `count` cliques of size `size` on random vertex subsets. Real
/// social graphs have dense cores (the paper's clique queries q8/q16/q24
/// find matches on every dataset); degree capping strips the generated
/// cores, so the proxies re-plant a few.
Graph plant_cliques(const Graph& g, std::size_t count, std::size_t size,
                    std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId u : g.neighbors(v))
      if (v < u) b.add_edge(v, u);
  for (std::size_t c = 0; c < count; ++c) {
    std::vector<VertexId> members;
    while (members.size() < size) {
      const auto v = static_cast<VertexId>(rng.next_below(g.num_vertices()));
      if (std::find(members.begin(), members.end(), v) == members.end())
        members.push_back(v);
    }
    for (std::size_t i = 0; i < size; ++i)
      for (std::size_t j = i + 1; j < size; ++j)
        b.add_edge(members[i], members[j]);
  }
  Graph planted = b.build();
  return g.is_labeled() ? planted.with_labels(g.labels()) : planted;
}

}  // namespace

Graph make_dataset(const std::string& name, double scale) {
  STM_CHECK(scale > 0.0);
  const ProxySpec& spec = find_spec(name);
  const std::uint64_t seed = 0x57a7c4ull * 1000003ull + spec.seed;
  Graph g;
  if (spec.kind == ProxySpec::kBa) {
    const auto n = static_cast<VertexId>(
        std::max<double>(spec.ba_m + 2, std::round(spec.n * scale)));
    g = make_barabasi_albert(n, spec.ba_m, seed);
  } else {
    int log_scale = 0;
    auto target = static_cast<double>(spec.n) * scale;
    while ((VertexId{1} << (log_scale + 1)) <= target) ++log_scale;
    g = make_rmat(std::max(log_scale, 4), spec.rmat_ef, 0.57, 0.19, 0.19, seed);
  }
  g = cap_degrees(g, spec.degree_cap, seed ^ 0xcafef00dULL);
  // Dense cores: a few 8-cliques so that clique queries up to K7 have
  // matches at every scale (degree capping strips the generated cores).
  const auto cores = static_cast<std::size_t>(
      std::max(1.0, std::round(2.0 * scale)));
  return plant_cliques(g, cores, 8, seed ^ 0xc0de5ULL);
}

Graph make_labeled_dataset(const std::string& name, double scale,
                           std::size_t num_labels) {
  const Graph g = make_dataset(name, scale);
  const std::uint64_t label_seed =
      0x1abe15ull ^ std::hash<std::string>{}(name);
  return with_random_labels(g, num_labels, label_seed);
}

EdgeId dataset_report_cap() { return 32; }

Graph make_skewed_dataset(const std::string& name, double scale,
                          std::size_t num_labels) {
  STM_CHECK(scale > 0.0);
  VertexId base = 0;
  std::uint64_t seed = 0;
  if (name == "enron") {
    base = 500;
    seed = 201;
  } else if (name == "youtube") {
    base = 640;
    seed = 202;
  } else if (name == "mico") {
    base = 800;
    seed = 203;
  } else if (name == "livejournal") {
    base = 1000;
    seed = 204;
  } else if (name == "orkut") {
    base = 1200;
    seed = 205;
  } else {
    STM_CHECK_MSG(false, "unknown skewed dataset: " << name);
  }
  const auto n = static_cast<VertexId>(
      std::max(8.0, std::round(static_cast<double>(base) * scale)));
  Graph g = make_barabasi_albert(n, 5, 0x5be3dull + seed);
  g = cap_degrees(g, 96, seed ^ 0xfeedULL);
  if (num_labels > 0) {
    g = with_random_labels(g, num_labels, seed ^ 0x1abe1ULL);
  }
  return g;
}

}  // namespace stm
