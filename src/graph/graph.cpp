#include "graph/graph.hpp"

#include <algorithm>

namespace stm {

Graph::Graph(std::vector<EdgeId> row_ptr, std::vector<VertexId> col_idx,
             std::vector<Label> labels)
    : row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      labels_(std::move(labels)) {
  STM_CHECK_MSG(!row_ptr_.empty(), "CSR row_ptr must have n+1 entries");
  STM_CHECK_MSG(row_ptr_.size() <= static_cast<std::size_t>(kMaxVertices) + 1,
                "CSR has more than kMaxVertices vertices");
  STM_CHECK(row_ptr_.front() == 0);
  STM_CHECK(row_ptr_.back() == col_idx_.size());
  const VertexId n = num_vertices();
  STM_CHECK(labels_.empty() || labels_.size() == n);
  for (Label l : labels_) {
    STM_CHECK_MSG(static_cast<std::size_t>(l) < kMaxLabels,
                  "vertex label out of range [0, " << kMaxLabels << ")");
  }
  for (VertexId v = 0; v < n; ++v) {
    STM_CHECK_MSG(row_ptr_[v] <= row_ptr_[v + 1], "row_ptr must be monotone");
    for (EdgeId e = row_ptr_[v]; e + 1 < row_ptr_[v + 1]; ++e) {
      STM_CHECK_MSG(col_idx_[e] < col_idx_[e + 1],
                    "neighbor lists must be strictly ascending (vertex " << v
                                                                         << ")");
    }
    for (EdgeId e = row_ptr_[v]; e < row_ptr_[v + 1]; ++e) {
      STM_CHECK_MSG(col_idx_[e] < n, "neighbor id out of range");
      STM_CHECK_MSG(col_idx_[e] != v, "self-loops are not allowed");
    }
  }
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::size_t Graph::num_labels() const {
  if (labels_.empty()) return 1;
  Label max_label = 0;
  for (Label l : labels_) max_label = std::max(max_label, l);
  return static_cast<std::size_t>(max_label) + 1;
}

EdgeId Graph::max_degree() const {
  EdgeId best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

Graph Graph::with_labels(std::vector<Label> labels) const {
  STM_CHECK(labels.size() == num_vertices());
  return Graph(row_ptr_, col_idx_, std::move(labels));
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  // Bounds-check before `id + 1`: a corrupt id near the VertexId maximum
  // would otherwise wrap n_ around to 0 and build a graph that silently
  // drops the edge's endpoints.
  STM_CHECK_MSG(u < kMaxVertices && v < kMaxVertices,
                "vertex id out of range [0, " << kMaxVertices << ")");
  if (u == v) return;
  n_ = std::max({n_, u + 1, v + 1});
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

void GraphBuilder::set_num_vertices(VertexId n) {
  STM_CHECK_MSG(n <= kMaxVertices,
                "vertex count out of range [0, " << kMaxVertices << "]");
  n_ = std::max(n_, n);
}

Graph disjoint_union(const Graph& a, const Graph& b) {
  const VertexId na = a.num_vertices();
  const VertexId nb = b.num_vertices();
  std::vector<EdgeId> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(na) + nb + 1);
  row_ptr.insert(row_ptr.end(), a.row_ptr().begin(), a.row_ptr().end());
  if (row_ptr.empty()) row_ptr.push_back(0);
  const EdgeId base = row_ptr.back();
  // b's row pointers continue where a's adjacency ends; entry 0 duplicates
  // row_ptr.back() and is skipped.
  for (std::size_t i = 1; i < b.row_ptr().size(); ++i)
    row_ptr.push_back(base + b.row_ptr()[i]);

  std::vector<VertexId> col_idx;
  col_idx.reserve(a.col_idx().size() + b.col_idx().size());
  col_idx.insert(col_idx.end(), a.col_idx().begin(), a.col_idx().end());
  for (VertexId v : b.col_idx()) col_idx.push_back(v + na);

  std::vector<Label> labels;
  if (a.is_labeled() || b.is_labeled()) {
    labels.assign(static_cast<std::size_t>(na) + nb, Label{0});
    for (VertexId v = 0; v < na; ++v) labels[v] = a.label(v);
    for (VertexId v = 0; v < nb; ++v)
      labels[static_cast<std::size_t>(na) + v] = b.label(v);
  }
  return Graph(std::move(row_ptr), std::move(col_idx), std::move(labels));
}

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.row_ptr() != b.row_ptr() || a.col_idx() != b.col_idx()) return false;
  if (a.labels() == b.labels()) return true;
  // One side unlabeled, the other labeled: equal iff every label is the
  // implicit 0.
  const auto& labeled = a.is_labeled() ? a : b;
  const auto& other = a.is_labeled() ? b : a;
  if (other.is_labeled()) return false;
  for (Label l : labeled.labels())
    if (l != 0) return false;
  return true;
}

Graph GraphBuilder::build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<EdgeId> row_ptr(static_cast<std::size_t>(n_) + 1, 0);
  for (auto [u, v] : edges_) {
    ++row_ptr[u + 1];
    ++row_ptr[v + 1];
  }
  for (std::size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];

  std::vector<VertexId> col_idx(edges_.size() * 2);
  std::vector<EdgeId> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (auto [u, v] : edges_) {
    col_idx[cursor[u]++] = v;
    col_idx[cursor[v]++] = u;
  }
  for (VertexId v = 0; v < n_; ++v) {
    std::sort(col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[v]),
              col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[v + 1]));
  }
  edges_.clear();
  Graph g(std::move(row_ptr), std::move(col_idx));
  n_ = 0;
  return g;
}

}  // namespace stm
