// Snapshot-backed adjacency view.
//
// GraphView is the adjacency interface the engines execute against: a
// non-owning handle over a base adjacency provider plus up to two override
// layers that remap individual vertices to externally owned merged neighbor
// lists. The base is either a raw CSR (a plain Graph converts implicitly, so
// every existing engine call site keeps working) or an AdjacencySource — the
// seam the storage subsystem plugs compressed / bitset / spill backends into
// without any engine knowing which representation it is reading.
//
// The dynamic-graph subsystem builds views whose dirty vertices read
// base-plus-delta adjacency without rebuilding the CSR (GraphSnapshot =
// layer 1, a transient DeltaOverlay = layer 0 on top).
//
// A view is valid only while its backing storage (the Graph or
// AdjacencySource, and the snapshot/overlay that owns the override tables)
// stays alive; views are cheap value types meant to be created per engine
// run.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"
#include "util/check.hpp"

namespace stm {

/// Abstract adjacency provider a GraphView can read instead of a raw CSR.
/// Implementations must return sorted-ascending neighbor spans that stay
/// valid for the lifetime of the source (or, for storage backends, for the
/// duration of an outstanding decode lease — see src/storage/store.hpp).
class AdjacencySource {
 public:
  virtual ~AdjacencySource() = default;

  virtual VertexId source_num_vertices() const = 0;
  /// Sorted neighbor list of v. May decode/materialize on first access.
  virtual std::span<const VertexId> source_neighbors(VertexId v) const = 0;
  /// Degree without materializing the list.
  virtual EdgeId source_degree(VertexId v) const = 0;
  /// Adjacency test without materializing the list (bitset probe or
  /// anchored seek on compressed backends).
  virtual bool source_has_edge(VertexId u, VertexId v) const = 0;
  /// Directed adjacency entries (2 x undirected edges).
  virtual EdgeId source_num_adjacency_entries() const = 0;
  /// Raw label array (nullptr when unlabeled).
  virtual const Label* source_labels() const = 0;
};

class GraphView {
 public:
  /// One override layer: slots[v] >= 0 redirects v's adjacency to
  /// (*lists)[slots[v]] (sorted ascending); -1 falls through.
  struct OverrideLayer {
    const std::int32_t* slots = nullptr;
    const std::vector<std::vector<VertexId>>* lists = nullptr;
    bool active() const { return slots != nullptr; }
  };

  GraphView() = default;

  /// Implicit: a plain CSR graph with no overrides.
  GraphView(const Graph& g)  // NOLINT(google-explicit-constructor)
      : row_ptr_(g.row_ptr().data()),
        col_idx_(g.col_idx().data()),
        labels_(g.is_labeled() ? g.labels().data() : nullptr),
        n_(g.num_vertices()) {}

  /// A view over an abstract adjacency source (storage backend).
  explicit GraphView(const AdjacencySource& src)
      : labels_(src.source_labels()),
        n_(src.source_num_vertices()),
        source_(&src) {}

  /// Stacks an override layer on top of `base`. At most two layers deep: an
  /// overlay over a snapshot view is the deepest supported composition.
  GraphView(const GraphView& base, const std::int32_t* slots,
            const std::vector<std::vector<VertexId>>* lists)
      : row_ptr_(base.row_ptr_),
        col_idx_(base.col_idx_),
        labels_(base.labels_),
        n_(base.n_),
        inner_{slots, lists},
        outer_(base.inner_),
        source_(base.source_) {
    STM_CHECK_MSG(!base.outer_.active(),
                  "GraphView supports at most two override layers");
  }

  VertexId num_vertices() const { return n_; }

  /// Sorted neighbor list of v, resolved through the override layers.
  std::span<const VertexId> neighbors(VertexId v) const {
    STM_CHECK(v < n_);
    if (inner_.active()) {
      const std::int32_t s = inner_.slots[v];
      if (s >= 0) {
        const auto& l = (*inner_.lists)[static_cast<std::size_t>(s)];
        return {l.data(), l.size()};
      }
    }
    if (outer_.active()) {
      const std::int32_t s = outer_.slots[v];
      if (s >= 0) {
        const auto& l = (*outer_.lists)[static_cast<std::size_t>(s)];
        return {l.data(), l.size()};
      }
    }
    if (source_ != nullptr) return source_->source_neighbors(v);
    return {col_idx_ + row_ptr_[v],
            static_cast<std::size_t>(row_ptr_[v + 1] - row_ptr_[v])};
  }

  /// Degree of v; on a storage-backed base this avoids materializing the
  /// neighbor list.
  EdgeId degree(VertexId v) const {
    STM_CHECK(v < n_);
    if (overridden(v) || source_ == nullptr) return neighbors(v).size();
    return source_->source_degree(v);
  }

  /// Adjacency test: O(log deg) on raw/override lists; O(1) bitset probe or
  /// anchored seek on storage-backed bases.
  bool has_edge(VertexId u, VertexId v) const {
    STM_CHECK(u < n_);
    if (source_ != nullptr && !overridden(u)) {
      return source_->source_has_edge(u, v);
    }
    const auto nbrs = neighbors(u);
    return std::binary_search(nbrs.begin(), nbrs.end(), v);
  }

  bool is_labeled() const { return labels_ != nullptr; }
  Label label(VertexId v) const {
    STM_CHECK(v < n_);
    return labels_ == nullptr ? Label{0} : labels_[v];
  }
  /// Raw label array for LabelFilter (nullptr when unlabeled).
  const Label* labels_data() const { return labels_; }

  /// O(n) scan (used once per engine run for stats).
  EdgeId max_degree() const {
    EdgeId best = 0;
    for (VertexId v = 0; v < n_; ++v) best = std::max(best, degree(v));
    return best;
  }

  /// Directed adjacency entries (2 x undirected edges); O(n) when overridden.
  EdgeId num_adjacency_entries() const {
    if (!inner_.active() && !outer_.active()) {
      if (source_ != nullptr) return source_->source_num_adjacency_entries();
      if (n_ > 0) return row_ptr_[n_];
    }
    EdgeId total = 0;
    for (VertexId v = 0; v < n_; ++v) total += degree(v);
    return total;
  }

  /// The storage backend this view reads through (nullptr = raw CSR).
  const AdjacencySource* adjacency_source() const { return source_; }

 private:
  bool overridden(VertexId v) const {
    return (inner_.active() && inner_.slots[v] >= 0) ||
           (outer_.active() && outer_.slots[v] >= 0);
  }

  const EdgeId* row_ptr_ = nullptr;
  const VertexId* col_idx_ = nullptr;
  const Label* labels_ = nullptr;
  VertexId n_ = 0;
  OverrideLayer inner_;  // consulted first (newest deltas)
  OverrideLayer outer_;
  const AdjacencySource* source_ = nullptr;  // consulted after overrides
};

}  // namespace stm
