#include "graph/edge_list.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace stm {

Graph read_edge_list(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    long long u, v;
    if (!(ls >> u)) continue;  // blank/comment line
    STM_CHECK_MSG(static_cast<bool>(ls >> v),
                  "edge list line " << line_no << ": expected two vertex ids");
    STM_CHECK_MSG(u >= 0 && v >= 0,
                  "edge list line " << line_no << ": negative vertex id");
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    long long extra;
    STM_CHECK_MSG(!(ls >> extra),
                  "edge list line " << line_no << ": trailing tokens");
  }
  return builder.build();
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  STM_CHECK_MSG(in.good(), "cannot open edge list file: " << path);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# stmatch edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  STM_CHECK_MSG(out.good(), "cannot open output file: " << path);
  write_edge_list(g, out);
  STM_CHECK_MSG(out.good(), "write failed: " << path);
}

}  // namespace stm
