#include "graph/edge_list.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/check.hpp"

namespace stm {

namespace {

/// Strict decimal vertex-id parser. `operator>>` into an integer would
/// accept junk like "12abc" (stopping at 'a') or silently saturate huge
/// values; corrupt input must fail loudly instead of building a wrong graph.
VertexId parse_vertex_id(const std::string& token, std::size_t line_no) {
  STM_CHECK_MSG(token.front() != '-',
                "edge list line " << line_no << ": negative vertex id '"
                                  << token << "'");
  std::uint64_t value = 0;
  for (char c : token) {
    STM_CHECK_MSG(c >= '0' && c <= '9', "edge list line "
                                            << line_no
                                            << ": expected a vertex id, got '"
                                            << token << "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    STM_CHECK_MSG(value < kMaxVertices, "edge list line "
                                            << line_no << ": vertex id '"
                                            << token << "' out of range");
  }
  return static_cast<VertexId>(value);
}

}  // namespace

Graph read_edge_list(std::istream& in, const EdgeListOptions& opts,
                     EdgeListStats* stats) {
  GraphBuilder builder;
  EdgeListStats local;
  // Undirected dedupe key; SNAP dumps list directed pairs both ways, so
  // canonicalize to (min, max) before hashing.
  std::unordered_set<std::uint64_t> seen;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string tok_u, tok_v, extra;
    if (!(ls >> tok_u)) continue;  // blank/comment line
    STM_CHECK_MSG(static_cast<bool>(ls >> tok_v),
                  "edge list line " << line_no << ": expected two vertex ids");
    const VertexId u = parse_vertex_id(tok_u, line_no);
    const VertexId v = parse_vertex_id(tok_v, line_no);
    STM_CHECK_MSG(!(ls >> extra),
                  "edge list line " << line_no << ": trailing tokens");
    ++local.lines;
    if (u == v) {
      STM_CHECK_MSG(opts.validation != EdgeListValidation::kStrict,
                    "edge list line " << line_no << ": self-loop " << u << " "
                                      << v);
      ++local.self_loops;
      continue;
    }
    const VertexId lo = u < v ? u : v;
    const VertexId hi = u < v ? v : u;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(lo) << 32) | static_cast<std::uint64_t>(hi);
    if (!seen.insert(key).second) {
      STM_CHECK_MSG(opts.validation != EdgeListValidation::kStrict,
                    "edge list line " << line_no << ": duplicate edge " << u
                                      << " " << v);
      ++local.duplicate_edges;
      continue;
    }
    builder.add_edge(u, v);
  }
  local.edges_kept = seen.size();
  if (stats != nullptr) *stats = local;
  return builder.build();
}

Graph load_edge_list(const std::string& path, const EdgeListOptions& opts,
                     EdgeListStats* stats) {
  std::ifstream in(path);
  STM_CHECK_MSG(in.good(), "cannot open edge list file: " << path);
  return read_edge_list(in, opts, stats);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# stmatch edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  STM_CHECK_MSG(out.good(), "cannot open output file: " << path);
  write_edge_list(g, out);
  STM_CHECK_MSG(out.good(), "write failed: " << path);
}

}  // namespace stm
