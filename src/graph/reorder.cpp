#include "graph/reorder.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/check.hpp"

namespace stm {

std::vector<VertexId> reorder_permutation(const Graph& g, ReorderKind kind) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  switch (kind) {
    case ReorderKind::kDegreeDescending:
      std::stable_sort(perm.begin(), perm.end(), [&](VertexId a, VertexId b) {
        return g.degree(a) > g.degree(b);
      });
      break;
    case ReorderKind::kDegreeAscending:
      std::stable_sort(perm.begin(), perm.end(), [&](VertexId a, VertexId b) {
        return g.degree(a) < g.degree(b);
      });
      break;
    case ReorderKind::kBfs: {
      std::vector<bool> visited(n, false);
      std::vector<VertexId> order;
      order.reserve(n);
      // Seed each component at its max-degree vertex, hubs-first overall.
      std::vector<VertexId> seeds(perm);
      std::stable_sort(seeds.begin(), seeds.end(), [&](VertexId a, VertexId b) {
        return g.degree(a) > g.degree(b);
      });
      std::deque<VertexId> queue;
      for (VertexId seed : seeds) {
        if (visited[seed]) continue;
        visited[seed] = true;
        queue.push_back(seed);
        while (!queue.empty()) {
          const VertexId v = queue.front();
          queue.pop_front();
          order.push_back(v);
          for (VertexId u : g.neighbors(v)) {
            if (!visited[u]) {
              visited[u] = true;
              queue.push_back(u);
            }
          }
        }
      }
      perm = std::move(order);
      break;
    }
  }
  return perm;
}

Graph apply_reorder(const Graph& g, const std::vector<VertexId>& perm) {
  const VertexId n = g.num_vertices();
  STM_CHECK(perm.size() == n);
  std::vector<VertexId> inverse(n, n);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    STM_CHECK(perm[new_id] < n);
    STM_CHECK_MSG(inverse[perm[new_id]] == n, "perm must be a permutation");
    inverse[perm[new_id]] = new_id;
  }
  GraphBuilder b(n);
  for (VertexId old_u = 0; old_u < n; ++old_u)
    for (VertexId old_v : g.neighbors(old_u))
      if (old_u < old_v) b.add_edge(inverse[old_u], inverse[old_v]);
  Graph out = b.build();
  if (g.is_labeled()) {
    std::vector<Label> labels(n);
    for (VertexId new_id = 0; new_id < n; ++new_id)
      labels[new_id] = g.label(perm[new_id]);
    out = out.with_labels(std::move(labels));
  }
  return out;
}

Graph reorder_graph(const Graph& g, ReorderKind kind) {
  return apply_reorder(g, reorder_permutation(g, kind));
}

}  // namespace stm
