// Vertex labelling utilities.
//
// The paper's labeled experiments assign ten uniform random labels to data
// and query graphs (following Dryadic's setup).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace stm {

/// Uniform random labels in [0, num_labels), seeded.
std::vector<Label> random_labels(VertexId n, std::size_t num_labels,
                                 std::uint64_t seed);

/// Returns g with seeded uniform random labels attached.
Graph with_random_labels(const Graph& g, std::size_t num_labels,
                         std::uint64_t seed);

/// Returns g with every label l replaced by mapping[l]. `mapping` must cover
/// all labels present and map into [0, kMaxLabels). When the mapping is a
/// bijection, match counts against a pattern mapped the same way are
/// invariant — the label-permutation equivariance the conformance harness
/// checks. Unlabeled graphs are returned unchanged.
Graph map_label_values(const Graph& g, const std::vector<Label>& mapping);

/// Per-label vertex counts; size == g.num_labels().
std::vector<std::size_t> label_histogram(const Graph& g);

/// Vertices carrying each label, each list sorted ascending. Used by the
/// GSI-style baseline for label-indexed candidate initialization.
std::vector<std::vector<VertexId>> vertices_by_label(const Graph& g);

}  // namespace stm
