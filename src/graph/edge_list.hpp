// Plain-text edge-list I/O (the SNAP repository format).
//
// Lines are `u v` pairs; `#` starts a comment. An optional label file has one
// `vertex label` pair per line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace stm {

/// What to do with duplicate edges and self-loops in the input. Real SNAP
/// dumps contain both (directed pairs listed in each direction, self-edges
/// from projection); silently folding them — the historic behavior — hides
/// data-quality problems from pipelines that care.
enum class EdgeListValidation : std::uint8_t {
  /// Drop duplicates/self-loops, report them in EdgeListStats.
  kLenient = 0,
  /// Raise check_error on the first duplicate or self-loop.
  kStrict,
};

struct EdgeListOptions {
  EdgeListValidation validation = EdgeListValidation::kLenient;
};

/// Data-quality report from a lenient load.
struct EdgeListStats {
  /// Edge lines parsed (comments/blanks excluded).
  std::size_t lines = 0;
  /// `u v` lines repeating an already-seen undirected edge (either
  /// orientation).
  std::size_t duplicate_edges = 0;
  /// `u u` lines.
  std::size_t self_loops = 0;
  /// Distinct undirected edges kept.
  std::size_t edges_kept = 0;
};

/// Parses an edge list from a stream. Throws check_error on malformed input;
/// under kStrict also on duplicates and self-loops. `stats` (optional)
/// receives the data-quality report.
Graph read_edge_list(std::istream& in, const EdgeListOptions& opts = {},
                     EdgeListStats* stats = nullptr);

/// Loads an edge-list file from disk.
Graph load_edge_list(const std::string& path, const EdgeListOptions& opts = {},
                     EdgeListStats* stats = nullptr);

/// Writes `u v` lines, one per undirected edge (u < v).
void write_edge_list(const Graph& g, std::ostream& out);

/// Saves to disk in the same format.
void save_edge_list(const Graph& g, const std::string& path);

}  // namespace stm
