// Plain-text edge-list I/O (the SNAP repository format).
//
// Lines are `u v` pairs; `#` starts a comment. An optional label file has one
// `vertex label` pair per line.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace stm {

/// Parses an edge list from a stream. Throws check_error on malformed input.
Graph read_edge_list(std::istream& in);

/// Loads an edge-list file from disk.
Graph load_edge_list(const std::string& path);

/// Writes `u v` lines, one per undirected edge (u < v).
void write_edge_list(const Graph& g, std::ostream& out);

/// Saves to disk in the same format.
void save_edge_list(const Graph& g, const std::string& path);

}  // namespace stm
