// CSR data graph.
//
// Undirected graphs are stored with both edge directions; neighbor lists are
// sorted ascending so the set-operation kernels can use merge/binary-search.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "util/check.hpp"

namespace stm {

/// Immutable undirected graph in CSR form with optional vertex labels.
class Graph {
 public:
  Graph() = default;

  /// Builds from a (deduplicated, symmetric, sorted) CSR. Use GraphBuilder
  /// for arbitrary edge lists; this constructor validates its input.
  Graph(std::vector<EdgeId> row_ptr, std::vector<VertexId> col_idx,
        std::vector<Label> labels = {});

  VertexId num_vertices() const {
    return row_ptr_.empty() ? 0 : static_cast<VertexId>(row_ptr_.size() - 1);
  }
  /// Number of undirected edges (each stored twice internally).
  EdgeId num_edges() const { return col_idx_.size() / 2; }
  /// Number of directed adjacency entries (2 × num_edges()).
  EdgeId num_adjacency_entries() const { return col_idx_.size(); }

  EdgeId degree(VertexId v) const {
    STM_CHECK(v < num_vertices());
    return row_ptr_[v + 1] - row_ptr_[v];
  }

  /// Sorted neighbor list of v.
  std::span<const VertexId> neighbors(VertexId v) const {
    STM_CHECK(v < num_vertices());
    return {col_idx_.data() + row_ptr_[v],
            static_cast<std::size_t>(row_ptr_[v + 1] - row_ptr_[v])};
  }

  /// O(log deg) adjacency test.
  bool has_edge(VertexId u, VertexId v) const;

  bool is_labeled() const { return !labels_.empty(); }
  Label label(VertexId v) const {
    STM_CHECK(v < num_vertices());
    return labels_.empty() ? Label{0} : labels_[v];
  }
  /// Number of distinct labels (1 if unlabeled).
  std::size_t num_labels() const;

  EdgeId max_degree() const;

  /// Resident heap footprint of the CSR arrays in bytes (capacity, not size:
  /// what the allocator actually holds). Feeds the spill tier's budget
  /// comparisons and the service's graph_resident_bytes gauge.
  std::uint64_t memory_bytes() const {
    return static_cast<std::uint64_t>(row_ptr_.capacity()) * sizeof(EdgeId) +
           static_cast<std::uint64_t>(col_idx_.capacity()) * sizeof(VertexId) +
           static_cast<std::uint64_t>(labels_.capacity()) * sizeof(Label);
  }

  const std::vector<EdgeId>& row_ptr() const { return row_ptr_; }
  const std::vector<VertexId>& col_idx() const { return col_idx_; }
  const std::vector<Label>& labels() const { return labels_; }

  /// Returns a copy of this graph with `labels` attached.
  Graph with_labels(std::vector<Label> labels) const;

 private:
  std::vector<EdgeId> row_ptr_;
  std::vector<VertexId> col_idx_;
  std::vector<Label> labels_;  // empty = unlabeled
};

/// The disjoint union of a and b: b's vertices are shifted past a's, no
/// edges cross. Labeled when either input is labeled (the unlabeled side
/// keeps implicit label 0, matching Graph::label). Counts of connected
/// patterns are additive over the union — the metamorphic relation the
/// conformance harness checks.
Graph disjoint_union(const Graph& a, const Graph& b);

/// Structural equality: identical CSR arrays and identical effective labels
/// (an unlabeled graph equals an all-zero-labeled one, matching
/// Graph::label). Used by the durability layer to verify that a recovered
/// graph is bit-identical to the state it was serialized from.
bool graphs_equal(const Graph& a, const Graph& b);

/// Incremental, order-insensitive construction of an undirected Graph.
/// Self-loops are dropped; duplicate edges are deduplicated.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices = 0) : n_(num_vertices) {}

  /// Adds an undirected edge; vertices beyond the current count grow the
  /// graph. Self-loops are silently ignored.
  void add_edge(VertexId u, VertexId v);

  void set_num_vertices(VertexId n);
  VertexId num_vertices() const { return n_; }
  std::size_t num_added_edges() const { return edges_.size(); }

  /// Finalizes into a CSR graph. The builder is left empty.
  Graph build();

 private:
  VertexId n_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace stm
