// Degree statistics (paper Table I columns) and shard balance reporting.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace stm {

/// The statistics the paper reports per dataset in Table I.
struct DegreeStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  EdgeId max_degree = 0;
  double median_degree = 0.0;
  double mean_degree = 0.0;
  /// Fraction of vertices whose degree exceeds the slab capacity
  /// (the paper's "Deg. > 4096" column, parameterized by `cap`).
  double frac_above_cap = 0.0;
};

DegreeStats compute_degree_stats(const Graph& g, EdgeId cap);

/// All vertex degrees (for histograms/tests).
std::vector<EdgeId> degree_sequence(const Graph& g);

/// Per-shard tallies of a vertex-disjoint ownership assignment.
struct ShardBalance {
  std::uint32_t shard = 0;
  VertexId vertices = 0;
  /// Edges with both endpoints owned by this shard.
  EdgeId intra_edges = 0;
  /// Cut edges incident to an owned vertex (each cut edge appears in the
  /// tally of both endpoint shards).
  EdgeId incident_cut_edges = 0;
  /// Scheduling load proxy: intra edges plus half of each incident cut edge.
  double edge_load() const {
    return static_cast<double>(intra_edges) +
           0.5 * static_cast<double>(incident_cut_edges);
  }
};

/// Balance report over an ownership vector — consumed by the shard
/// scheduler's imbalance gauge and the tools/partition_info CLI.
struct BalanceReport {
  std::vector<ShardBalance> shards;
  /// Distinct edges whose endpoints are owned by different shards.
  EdgeId cut_edges = 0;
  /// cut_edges / num_edges (0 for edgeless graphs).
  double cut_fraction = 0.0;
  /// max / mean owned vertices over shards (1.0 = perfectly balanced).
  double vertex_imbalance = 1.0;
  /// max / mean edge_load over shards (1.0 = perfectly balanced).
  double edge_imbalance = 1.0;
};

/// Computes per-shard vertex/edge/cut tallies and imbalance ratios.
/// `owner[v]` must be < num_shards for every vertex; num_shards >= 1.
BalanceReport balance_report(const Graph& g,
                             const std::vector<std::uint32_t>& owner,
                             std::uint32_t num_shards);

}  // namespace stm
