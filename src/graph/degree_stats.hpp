// Degree statistics (paper Table I columns).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace stm {

/// The statistics the paper reports per dataset in Table I.
struct DegreeStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  EdgeId max_degree = 0;
  double median_degree = 0.0;
  double mean_degree = 0.0;
  /// Fraction of vertices whose degree exceeds the slab capacity
  /// (the paper's "Deg. > 4096" column, parameterized by `cap`).
  double frac_above_cap = 0.0;
};

DegreeStats compute_degree_stats(const Graph& g, EdgeId cap);

/// All vertex degrees (for histograms/tests).
std::vector<EdgeId> degree_sequence(const Graph& g);

}  // namespace stm
