// Seeded synthetic graph generators.
//
// Power-law generators (Barabási–Albert, RMAT) provide the degree-skewed
// proxies for the paper's SNAP datasets; the regular families (clique, cycle,
// star, path, grid, complete bipartite) anchor closed-form tests.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace stm {

/// G(n, p) Erdős–Rényi graph.
Graph make_erdos_renyi(VertexId n, double p, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices (degree-proportional). Produces power-law skew.
Graph make_barabasi_albert(VertexId n, VertexId m, std::uint64_t seed);

/// RMAT / Kronecker-style generator with partition probabilities (a,b,c,d);
/// 2^scale vertices and `edge_factor * 2^scale` sampled edges (before
/// deduplication). a+b+c+d must sum to 1.
Graph make_rmat(int scale, double edge_factor, double a, double b, double c,
                std::uint64_t seed);

/// Complete graph K_n.
Graph make_clique(VertexId n);

/// Cycle C_n (n >= 3).
Graph make_cycle(VertexId n);

/// Star S_n: one hub and n leaves (n+1 vertices).
Graph make_star(VertexId leaves);

/// Path P_n on n vertices.
Graph make_path(VertexId n);

/// Complete bipartite K_{a,b}.
Graph make_complete_bipartite(VertexId a, VertexId b);

/// 2-D grid with r rows and c columns.
Graph make_grid(VertexId rows, VertexId cols);

}  // namespace stm
