// Reproduces paper Table III: labeled edge-induced matching.
//
// Systems: STMatch, GSI-style GPU baseline, Dryadic-style CPU baseline.
// Paper claims reproduced: STMatch fastest everywhere; the speedups grow
// with graph size; GSI aborts (out of memory) on MiCo and every larger
// graph.
//
// The paper assigns 10 random labels; the proxies default to 2 so that the
// per-level label selectivity relative to the ~1000x smaller graphs leaves a
// workload comparable in shape (override with --labels).
#include <cstdio>
#include <iostream>
#include <map>

#include "baselines/dryadic.hpp"
#include "baselines/subgraph_centric.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "pattern/queries.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  auto args = bench::parse_args(argc, argv, /*default_scale=*/1.0);
  const auto& graphs = dataset_names();

  GsiConfig gsi_cfg;  // defaults calibrated in DESIGN.md §2

  std::printf(
      "== Table III: labeled edge-induced matching, ms (simulated) ==\n"
      "scale %.2f, %zu labels; 'x (OOM)' marks GSI aborts as in the paper\n\n",
      args.scale, args.labels);

  std::vector<double> vs_gsi;
  std::map<std::string, std::vector<double>> vs_dryadic_by_graph;
  Table table({"query", "graph", "count", "GSI", "Dryadic", "STMatch",
               "vs GSI", "vs Dryadic"});
  for (int q = 1; q <= num_queries(); ++q) {
    const bool big_query = query(q).size() >= 7;
    if (args.quick && q % 4 != 0) continue;
    for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
      const auto& gname = graphs[gi];
      // Size-7 queries on the three largest proxies take minutes on one
      // core; the default grid matches the paper's Table III layout
      // (q1-q16 everywhere). --full widens it.
      if (!args.full && big_query && gi >= 4) continue;
      Graph g = make_labeled_dataset(gname, args.scale, args.labels);
      Pattern p = labeled_query(q, args.labels);
      auto stm_result =
          stmatch_match_pattern(g, p, {}, bench::engine_preset());
      auto dry = dryadic_match(g, p);
      auto gsi = gsi_match(g, p, gsi_cfg);
      table.add_row(
          {query_name(q), gname, Table::fmt_count(stm_result.count),
           bench::ms_cell(gsi.sim_ms, gsi.out_of_memory),
           bench::ms_cell(dry.sim_ms), bench::ms_cell(stm_result.stats.sim_ms),
           gsi.out_of_memory
               ? "-"
               : bench::speedup_cell(gsi.sim_ms, stm_result.stats.sim_ms),
           bench::speedup_cell(dry.sim_ms, stm_result.stats.sim_ms)});
      if (!gsi.out_of_memory)
        vs_gsi.push_back(gsi.sim_ms / stm_result.stats.sim_ms);
      vs_dryadic_by_graph[gname].push_back(dry.sim_ms /
                                           stm_result.stats.sim_ms);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf("\n");
  bench::print_speedup_summary("STMatch vs GSI", vs_gsi);
  std::printf(
      "\nSTMatch vs Dryadic by graph (paper: average speedup grows with "
      "graph size):\n");
  for (const auto& gname : graphs) {
    auto it = vs_dryadic_by_graph.find(gname);
    if (it == vs_dryadic_by_graph.end()) continue;
    bench::print_speedup_summary("  " + gname, it->second);
  }
  return 0;
}
