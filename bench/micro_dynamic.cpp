// Micro-benchmarks of the dynamic graph subsystem: batch application cost,
// and incremental (delta) matching vs. full re-enumeration for small batches
// — the acceptance target is speedup_vs_full >= 5 for batches of <= 1% of
// the edges.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/recursive.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/pattern.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace stm;

const Graph& dynamic_base() {
  // Power-law proxy of the paper's SNAP datasets: skewed degrees make full
  // re-enumeration expensive while a small batch touches few hot vertices.
  static const Graph g = make_barabasi_albert(4000, 8, 77);
  return g;
}

/// A valid random batch: random pairs classified against the current
/// version (present -> delete, absent -> insert).
UpdateBatch random_batch(const GraphSnapshot& snap, Rng& rng, int num_edges) {
  const VertexId n = snap.num_vertices();
  UpdateBatch batch;
  for (int i = 0; i < num_edges; ++i) {
    const auto u = static_cast<VertexId>(rng() % n);
    const auto v = static_cast<VertexId>(rng() % n);
    if (u == v) continue;
    if (snap.has_edge(u, v)) {
      batch.deletions.emplace_back(u, v);
    } else {
      batch.insertions.emplace_back(u, v);
    }
  }
  return batch;
}

void BM_ApplyBatch(benchmark::State& state) {
  const int batch_edges = static_cast<int>(state.range(0));
  MutableGraph g(dynamic_base());
  Rng rng(1);
  for (auto _ : state) {
    ApplyResult r = g.apply(random_batch(*g.snapshot(), rng, batch_edges));
    benchmark::DoNotOptimize(r.snapshot);
  }
  state.counters["epoch"] = static_cast<double>(g.epoch());
}
BENCHMARK(BM_ApplyBatch)->Arg(10)->Arg(100)->Arg(1000);

void BM_Compact(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    MutableGraph g(dynamic_base());
    Rng rng(2);
    for (int i = 0; i < 8; ++i)
      g.apply(random_batch(*g.snapshot(), rng, 64));
    state.ResumeTiming();
    auto snap = g.compact();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_Compact);

/// Delta matching vs. full re-enumeration on the same snapshot. The counter
/// `speedup_vs_full` is the acceptance metric: for batches of <= 1% of the
/// edges (Arg <= ~320 on this base graph) it must exceed 5.
void BM_DeltaVsFull(benchmark::State& state) {
  const int batch_edges = static_cast<int>(state.range(0));
  const Pattern triangle = Pattern::parse("0-1,1-2,2-0");
  IncrementalMatcher matcher(triangle);
  MatchingPlan full_plan(reorder_for_matching(triangle), {});

  MutableGraph g(dynamic_base());
  Rng rng(3);
  double delta_ms_sum = 0.0;
  double full_ms_sum = 0.0;
  std::int64_t last_delta = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto from = g.snapshot();
    ApplyResult applied = g.apply(random_batch(*from, rng, batch_edges));
    state.ResumeTiming();

    Timer delta_timer;
    DeltaMatchResult d = matcher.count_delta(from, applied.applied);
    delta_ms_sum += delta_timer.elapsed_ms();
    last_delta = d.delta;
    benchmark::DoNotOptimize(d.delta);

    // The alternative a maintained count replaces: re-enumerate the new
    // version from scratch. Timed inside the iteration so both sides see
    // identical graph state, but reported separately via counters.
    Timer full_timer;
    const GraphView view = applied.snapshot->view();
    auto count = recursive_count_range(view, full_plan, 0,
                                       view.num_vertices());
    full_ms_sum += full_timer.elapsed_ms();
    benchmark::DoNotOptimize(count);
  }
  state.counters["delta_ms"] =
      delta_ms_sum / static_cast<double>(state.iterations());
  state.counters["full_ms"] =
      full_ms_sum / static_cast<double>(state.iterations());
  state.counters["speedup_vs_full"] =
      delta_ms_sum > 0.0 ? full_ms_sum / delta_ms_sum : 0.0;
  state.counters["last_delta"] = static_cast<double>(last_delta);
  state.counters["batch_pct_of_edges"] =
      100.0 * static_cast<double>(batch_edges) /
      static_cast<double>(dynamic_base().num_edges());
}
BENCHMARK(BM_DeltaVsFull)->Arg(8)->Arg(32)->Arg(128)->Arg(320);

}  // namespace
