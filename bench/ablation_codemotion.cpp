// Reproduces the paper's code-motion ablation (§VIII-C, text):
// "If we disable code motion, the naive baseline will be about 3x slower."
//
// Runs the naive engine variant (no stealing, no unrolling — the baseline
// the quote refers to) with the code-motion plan vs the recompute-everything
// plan, plus the same ablation for the Dryadic CPU model.
#include <cstdio>
#include <iostream>

#include "baselines/dryadic.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "pattern/queries.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  auto args = bench::parse_args(argc, argv, /*default_scale=*/0.3);
  const std::vector<std::string> graphs = {"wiki_vote", "mico"};
  // Dense queries with shared intersection prefixes benefit most.
  std::vector<int> queries = {4, 6, 8, 13, 15, 16, 22};
  if (args.quick) queries = {8, 16};

  EngineConfig naive_cfg = bench::engine_preset();
  naive_cfg.local_steal = false;
  naive_cfg.global_steal = false;
  naive_cfg.unroll = 1;

  std::printf(
      "== Code-motion ablation (paper §VIII-C: naive baseline ~3x slower "
      "without it) ==\n\n");
  Table table({"graph", "query", "with motion (ms)", "without (ms)",
               "slowdown"});
  std::vector<double> slowdowns;
  for (const auto& gname : graphs) {
    for (int q : queries) {
      Graph g = make_dataset(gname, args.scale);
      PlanOptions with{Induced::kEdge, true, CountMode::kEmbeddings};
      PlanOptions without{Induced::kEdge, false, CountMode::kEmbeddings};
      auto a = stmatch_match_pattern(g, query(q), with, naive_cfg);
      auto b = stmatch_match_pattern(g, query(q), without, naive_cfg);
      table.add_row({gname, query_name(q), bench::ms_cell(a.stats.sim_ms),
                     bench::ms_cell(b.stats.sim_ms),
                     bench::speedup_cell(b.stats.sim_ms, a.stats.sim_ms)});
      slowdowns.push_back(b.stats.sim_ms / a.stats.sim_ms);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf("\n");
  bench::print_speedup_summary("slowdown without code motion (STMatch naive)",
                               slowdowns);

  std::printf("\nDryadic CPU model, same ablation:\n");
  std::vector<double> dry_slow;
  for (const auto& gname : graphs) {
    for (int q : queries) {
      Graph g = make_dataset(gname, args.scale);
      DryadicConfig with;
      DryadicConfig without;
      without.code_motion = false;
      auto a = dryadic_match(g, query(q), {}, with);
      auto b = dryadic_match(g, query(q), {}, without);
      dry_slow.push_back(b.sim_ms / a.sim_ms);
    }
  }
  bench::print_speedup_summary("slowdown without code motion (Dryadic)",
                               dry_slow);
  return 0;
}
