// Micro-benchmarks of the set-operation kernels (google-benchmark).
//
// These are real wall-clock measurements of the host kernels, not simulated
// cycles: they justify the cost-model constants (merge vs binary search vs
// galloping, fused multi-set ops).
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "setops/multi_set_op.hpp"
#include "setops/set_ops.hpp"
#include "setops/simd.hpp"
#include "util/rng.hpp"

namespace {

using namespace stm;

std::vector<VertexId> sorted_set(Rng& rng, std::size_t size,
                                 VertexId universe) {
  std::vector<VertexId> v;
  v.reserve(size * 2);
  while (v.size() < size)
    v.push_back(static_cast<VertexId>(rng.next_below(universe)));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

void BM_IntersectMerge(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = sorted_set(rng, n, static_cast<VertexId>(n * 8));
  auto b = sorted_set(rng, n, static_cast<VertexId>(n * 8));
  std::vector<VertexId> out;
  for (auto _ : state) {
    set_intersect_into(a, b, out, IntersectAlgo::kMerge);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_IntersectMerge)->Range(16, 4096);

void BM_IntersectBinary(benchmark::State& state) {
  Rng rng(2);
  auto a = sorted_set(rng, 32, 10000);
  auto b = sorted_set(rng, static_cast<std::size_t>(state.range(0)), 100000);
  std::vector<VertexId> out;
  for (auto _ : state) {
    set_intersect_into(a, b, out, IntersectAlgo::kBinary);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectBinary)->Range(64, 16384);

void BM_IntersectGalloping(benchmark::State& state) {
  Rng rng(3);
  auto a = sorted_set(rng, 32, 10000);
  auto b = sorted_set(rng, static_cast<std::size_t>(state.range(0)), 100000);
  std::vector<VertexId> out;
  for (auto _ : state) {
    set_intersect_into(a, b, out, IntersectAlgo::kGalloping);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_IntersectGalloping)->Range(64, 16384);

void BM_Difference(benchmark::State& state) {
  Rng rng(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = sorted_set(rng, n, static_cast<VertexId>(n * 4));
  auto b = sorted_set(rng, n, static_cast<VertexId>(n * 4));
  std::vector<VertexId> out;
  for (auto _ : state) {
    set_difference_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Difference)->Range(16, 4096);

void BM_CombinedMultiSetOp(benchmark::State& state) {
  // M fused small ops vs M sequential ops: the unrolling payoff (Fig. 8).
  Rng rng(5);
  const auto fuse = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<VertexId>> sources(fuse), targets(fuse), outs(fuse);
  std::vector<SetOpTask> tasks(fuse);
  for (std::size_t i = 0; i < fuse; ++i) {
    sources[i] = sorted_set(rng, 12, 400);
    targets[i] = sorted_set(rng, 12, 400);
    tasks[i] = {sources[i], targets[i], SetOpKind::kIntersect, {}, &outs[i]};
  }
  WarpOpCost cost;
  for (auto _ : state) {
    combined_set_op(tasks, &cost);
    benchmark::DoNotOptimize(outs.data());
  }
  state.counters["lane_util"] = cost.utilization();
}
BENCHMARK(BM_CombinedMultiSetOp)->RangeMultiplier(2)->Range(1, 16);

// ---------------------------------------------------------------------------
// Per-ISA kernel grids (EXPERIMENTS.md "SIMD set operations"). Each benchmark
// takes (size, isa) from ArgsProduct and drives the raw kernel table of that
// level, so the numbers are pure kernel throughput — no wrapper resize or
// algorithm-selection overhead. Unsupported levels self-skip so the same
// binary runs on any host.
// ---------------------------------------------------------------------------

const char* IsaArgName(std::int64_t isa) {
  return simd::to_string(static_cast<simd::IsaLevel>(isa));
}

/// Fetches the kernel table for the benchmark's ISA argument, or skips the
/// benchmark when this build/CPU cannot execute it.
const simd::Kernels* KernelsOrSkip(benchmark::State& state) {
  const auto level = static_cast<simd::IsaLevel>(state.range(1));
  if (!simd::is_supported(level)) {
    state.SkipWithError("isa level not supported on this host");
    return nullptr;
  }
  return &simd::kernels_for(level);
}

void SetIsaLabel(benchmark::State& state) {
  state.SetLabel(IsaArgName(state.range(1)));
}

void BM_SimdIntersect(benchmark::State& state) {
  const simd::Kernels* k = KernelsOrSkip(state);
  if (!k) return;
  Rng rng(21);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = sorted_set(rng, n, static_cast<VertexId>(n * 8));
  auto b = sorted_set(rng, n, static_cast<VertexId>(n * 8));
  std::vector<VertexId> out(std::min(a.size(), b.size()) +
                            simd::kSimdOutSlack);
  for (auto _ : state) {
    const std::size_t got =
        k->intersect(a.data(), a.size(), b.data(), b.size(), out.data());
    benchmark::DoNotOptimize(got);
    benchmark::DoNotOptimize(out.data());
  }
  SetIsaLabel(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_SimdIntersect)
    ->ArgsProduct({{16, 64, 256, 1024, 4096}, {0, 1, 2}});

void BM_SimdIntersectCount(benchmark::State& state) {
  const simd::Kernels* k = KernelsOrSkip(state);
  if (!k) return;
  Rng rng(22);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = sorted_set(rng, n, static_cast<VertexId>(n * 8));
  auto b = sorted_set(rng, n, static_cast<VertexId>(n * 8));
  for (auto _ : state) {
    const std::size_t got =
        k->intersect_count(a.data(), a.size(), b.data(), b.size());
    benchmark::DoNotOptimize(got);
  }
  SetIsaLabel(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_SimdIntersectCount)
    ->ArgsProduct({{16, 64, 256, 1024, 4096}, {0, 1, 2}});

void BM_SimdDifference(benchmark::State& state) {
  const simd::Kernels* k = KernelsOrSkip(state);
  if (!k) return;
  Rng rng(23);
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = sorted_set(rng, n, static_cast<VertexId>(n * 4));
  auto b = sorted_set(rng, n, static_cast<VertexId>(n * 4));
  std::vector<VertexId> out(a.size() + simd::kSimdOutSlack);
  for (auto _ : state) {
    const std::size_t got =
        k->difference(a.data(), a.size(), b.data(), b.size(), out.data());
    benchmark::DoNotOptimize(got);
    benchmark::DoNotOptimize(out.data());
  }
  SetIsaLabel(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_SimdDifference)
    ->ArgsProduct({{16, 64, 256, 1024, 4096}, {0, 1, 2}});

void BM_SimdGallopIntersect(benchmark::State& state) {
  // Skew grid: |a| = 32 probes into |b| = 32 * ratio. Justifies
  // kGallopSkewRatio: below ~16x the block merge still wins, past ~32x
  // galloping takes over regardless of ISA.
  const simd::Kernels* k = KernelsOrSkip(state);
  if (!k) return;
  Rng rng(24);
  const auto ratio = static_cast<std::size_t>(state.range(0));
  auto a = sorted_set(rng, 32, static_cast<VertexId>(32 * ratio * 4));
  auto b =
      sorted_set(rng, 32 * ratio, static_cast<VertexId>(32 * ratio * 4));
  std::vector<VertexId> out(std::min(a.size(), b.size()) +
                            simd::kSimdOutSlack);
  for (auto _ : state) {
    const std::size_t got = k->gallop_intersect(a.data(), a.size(), b.data(),
                                                b.size(), out.data());
    benchmark::DoNotOptimize(got);
    benchmark::DoNotOptimize(out.data());
  }
  SetIsaLabel(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_SimdGallopIntersect)
    ->ArgsProduct({{4, 16, 64, 256}, {0, 1, 2}});

void BM_SimdMergeUnderSkew(benchmark::State& state) {
  // Same skewed inputs through the block-merge kernel: the crossover against
  // BM_SimdGallopIntersect is what kGallopSkewRatio = 32 encodes.
  const simd::Kernels* k = KernelsOrSkip(state);
  if (!k) return;
  Rng rng(24);  // same seed as the gallop grid: identical inputs
  const auto ratio = static_cast<std::size_t>(state.range(0));
  auto a = sorted_set(rng, 32, static_cast<VertexId>(32 * ratio * 4));
  auto b =
      sorted_set(rng, 32 * ratio, static_cast<VertexId>(32 * ratio * 4));
  std::vector<VertexId> out(std::min(a.size(), b.size()) +
                            simd::kSimdOutSlack);
  for (auto _ : state) {
    const std::size_t got =
        k->intersect(a.data(), a.size(), b.data(), b.size(), out.data());
    benchmark::DoNotOptimize(got);
    benchmark::DoNotOptimize(out.data());
  }
  SetIsaLabel(state);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_SimdMergeUnderSkew)
    ->ArgsProduct({{4, 16, 64, 256}, {0, 1, 2}});

void BM_NeighborScan(benchmark::State& state) {
  Graph g = make_barabasi_albert(2000, 8, 11);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (VertexId u : g.neighbors(v)) sum += u;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_adjacency_entries()));
}
BENCHMARK(BM_NeighborScan);

}  // namespace

BENCHMARK_MAIN();
