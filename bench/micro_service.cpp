// Service-layer micro-benchmark: plan-cache speedup, deadline overshoot, and
// throughput/latency under concurrent mixed query load.
//
//   ./micro_service [--scale=S] [--quick]
//
// Three sections, matching the service layer's acceptance criteria:
//   1. plan cache — end-to-end latency of repeated small queries, cold
//      (cache cleared before each run) vs warm (plan reused); the warm path
//      must be >= 5x faster where plan compilation dominates;
//   2. deadlines — a deliberately tight budget on a heavy size-7 query over
//      a skewed proxy must come back kDeadlineExceeded within 2x the budget;
//   3. mixed load — q1..q24 submitted concurrently under a per-query
//      deadline: qps, p50/p95/p99 latency, cache hit rate, status mix.
// Ends by printing the session metrics as JSON and Prometheus text.
#include <algorithm>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "pattern/queries.hpp"
#include "service/service.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace stm {
namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

QueryRequest make_request(const Pattern& p, double deadline_ms,
                          const PlanOptions& plan = {}) {
  QueryRequest req;
  req.pattern = p;
  req.plan = plan;
  req.deadline_ms = deadline_ms;
  return req;
}

// Section 1: cold (cache cleared) vs warm (plan reused) end-to-end latency.
// Small graph + symmetry-broken counting keeps execution cheap relative to
// plan compilation, which is the repeated-small-query regime the cache is
// for.
void bench_plan_cache(int reps) {
  std::printf("== plan cache: cold vs warm (end-to-end, host engine) ==\n");
  GraphSession session(make_barabasi_albert(64, 3, 11));
  PlanOptions unique;
  unique.count_mode = CountMode::kUniqueSubgraphs;

  Table table({"query", "cold_ms", "warm_ms", "speedup"});
  double cold_total = 0.0, warm_total = 0.0;
  for (int q : {16, 23, 24}) {
    std::vector<double> cold_ms, warm_ms;
    for (int rep = 0; rep < reps; ++rep) {
      session.plan_cache().clear();
      cold_ms.push_back(session.run(make_request(query(q), -1.0, unique)).total_ms);
      // First warm run after the cold one primes nothing new; measure it.
      warm_ms.push_back(session.run(make_request(query(q), -1.0, unique)).total_ms);
    }
    const double cold = median(cold_ms), warm = median(warm_ms);
    cold_total += cold;
    warm_total += warm;
    table.add_row({query_name(q), Table::fmt(cold, 3), Table::fmt(warm, 3),
                   Table::fmt(cold / warm, 1) + "x"});
  }
  table.add_separator();
  table.add_row({"all", Table::fmt(cold_total, 3), Table::fmt(warm_total, 3),
                 Table::fmt(cold_total / warm_total, 1) + "x"});
  table.print(std::cout);
  std::printf("(acceptance: warm >= 5x faster overall)\n\n");
}

// Section 2: tight deadline on a heavy size-7 query over a skewed proxy.
void bench_deadline(double scale) {
  std::printf("== deadline overshoot (q17 on enron proxy, host engine) ==\n");
  GraphSession session(make_skewed_dataset("enron", scale));
  Table table({"deadline_ms", "status", "wall_ms", "wall/deadline", "partial_count"});
  for (double deadline : {50.0, 100.0, 250.0}) {
    const QueryResult r = session.run(make_request(query(17), deadline));
    table.add_row({Table::fmt(deadline, 0), to_string(r.status),
                   Table::fmt(r.total_ms, 2),
                   Table::fmt(r.total_ms / deadline, 3) + "x",
                   std::to_string(r.count)});
  }
  table.print(std::cout);
  std::printf("(acceptance: deadline_exceeded within 2x the deadline)\n\n");
}

// Section 3: concurrent mixed q1..q24 load with a per-query deadline.
// Closed-loop clients (each submits its next query when the previous one
// finishes) keep queue wait bounded, so the deadline budget is spent in the
// engine, not in the queue.
void bench_mixed_load(double scale, int rounds) {
  const int num_clients = 4;
  std::printf("== mixed load: %d clients x q1..q24 x %d passes ==\n",
              num_clients, rounds);
  SessionConfig cfg;
  cfg.max_concurrent_queries = 4;
  cfg.max_queued_queries = 256;
  cfg.default_deadline_ms = 100.0;  // heavy queries are cut, light ones finish
  GraphSession session(make_skewed_dataset("enron", scale), cfg);

  std::mutex mu;
  std::size_t ok = 0, deadline = 0, other = 0;
  std::vector<double> latencies;
  Timer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      for (int round = 0; round < rounds; ++round) {
        for (int q = 1; q <= num_queries(); ++q) {
          const QueryResult r = session.run(make_request(query(q), 0.0));
          std::lock_guard<std::mutex> lock(mu);
          latencies.push_back(r.total_ms);
          if (r.status == QueryStatus::kOk) ++ok;
          else if (r.status == QueryStatus::kDeadlineExceeded) ++deadline;
          else ++other;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double total_s = wall.elapsed_ms() / 1000.0;
  const std::size_t n = latencies.size();
  std::printf("%zu queries in %.2f s -> %.1f qps\n", n, total_s, n / total_s);
  std::printf("status: %zu ok, %zu deadline_exceeded, %zu other\n", ok,
              deadline, other);
  std::printf("latency p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
              percentile(latencies, 50.0), percentile(latencies, 95.0),
              percentile(latencies, 99.0));
  std::printf("plan cache hit rate: %.0f%%\n\n",
              100.0 * session.plan_cache().stats().hit_rate());

  std::printf("--- session metrics (JSON) ---\n%s\n",
              session.metrics().to_json().c_str());
  std::printf("--- session metrics (Prometheus) ---\n%s",
              session.metrics().to_prometheus().c_str());
}

}  // namespace
}  // namespace stm

int main(int argc, char** argv) {
  using namespace stm;
  const bench::BenchArgs args = bench::parse_args(argc, argv, /*default_scale=*/0.25);
  const int reps = args.quick ? 10 : 30;
  const int rounds = args.quick ? 1 : 3;
  bench_plan_cache(reps);
  bench_deadline(args.scale);
  bench_mixed_load(args.scale, rounds);
  return 0;
}
