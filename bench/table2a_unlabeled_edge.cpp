// Reproduces paper Table II(a): unlabeled edge-induced matching.
//
// Systems: STMatch (this work), cuTS-style GPU baseline, Dryadic-style CPU
// baseline. Paper claims reproduced: STMatch fastest everywhere; Dryadic
// consistently beats cuTS; cuTS runs out of memory on MiCo.
#include <cstdio>
#include <iostream>

#include "baselines/dryadic.hpp"
#include "baselines/subgraph_centric.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "pattern/queries.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  auto args = bench::parse_args(argc, argv, /*default_scale=*/0.3);
  const std::vector<std::string> graphs = {"wiki_vote", "enron", "mico"};
  std::vector<int> queries;
  for (int q = 1; q <= num_queries(); ++q) queries.push_back(q);
  if (args.quick) queries = {1, 4, 8, 9, 16, 17, 24};

  // cuTS preprocessing footprint scaled with the proxies so the densest
  // graph (MiCo) exceeds device memory exactly as in the paper, while the
  // DFS/BFS-hybrid chunking lets everything else complete.
  CutsConfig cuts_cfg;
  cuts_cfg.preprocess_bytes_per_edge = 16384;
  {
    const auto enron_edges = make_dataset("enron", args.scale).num_edges();
    const auto mico_edges = make_dataset("mico", args.scale).num_edges();
    cuts_cfg.device.global_mem_bytes =
        (enron_edges + mico_edges) / 2 * cuts_cfg.preprocess_bytes_per_edge;
  }

  std::printf(
      "== Table II(a): unlabeled edge-induced matching, ms (simulated) ==\n"
      "datasets at scale %.2f; 'x (OOM)' marks out-of-memory as in the "
      "paper\n\n",
      args.scale);

  std::vector<double> vs_cuts, vs_dryadic;
  Table table({"query", "graph", "count", "cuTS", "Dryadic", "STMatch",
               "vs cuTS", "vs Dryadic"});
  for (int q : queries) {
    for (const auto& gname : graphs) {
      Graph g = make_dataset(gname, args.scale);
      auto stm_result = stmatch_match_pattern(g, query(q), {},
                                              bench::engine_preset());
      auto dry = dryadic_match(g, query(q));
      auto cuts = cuts_match(g, query(q), cuts_cfg);
      table.add_row(
          {query_name(q), gname, Table::fmt_count(stm_result.count),
           bench::ms_cell(cuts.sim_ms, cuts.out_of_memory),
           bench::ms_cell(dry.sim_ms), bench::ms_cell(stm_result.stats.sim_ms),
           cuts.out_of_memory
               ? "-"
               : bench::speedup_cell(cuts.sim_ms, stm_result.stats.sim_ms),
           bench::speedup_cell(dry.sim_ms, stm_result.stats.sim_ms)});
      if (!cuts.out_of_memory)
        vs_cuts.push_back(cuts.sim_ms / stm_result.stats.sim_ms);
      vs_dryadic.push_back(dry.sim_ms / stm_result.stats.sim_ms);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf("\n");
  bench::print_speedup_summary("STMatch vs cuTS   ", vs_cuts);
  bench::print_speedup_summary("STMatch vs Dryadic", vs_dryadic);
  return 0;
}
