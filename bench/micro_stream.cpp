// Micro-benchmarks of the streaming results subsystem: the cost of emitting
// embeddings vs. counting them, stream throughput as a function of the
// backpressure buffer, and the producer stall fraction a slow consumer
// causes (EXPERIMENTS.md records the baseline expectations).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "pattern/pattern.hpp"
#include "service/service.hpp"
#include "service/stream.hpp"

namespace {

using namespace stm;

const Graph& stream_base() {
  // Power-law proxy: skewed degrees give large per-vertex buckets, the
  // worst case for the sequencer's pending map.
  static const Graph g = make_barabasi_albert(2000, 6, 77);
  return g;
}

GraphSession& shared_session() {
  static GraphSession session{Graph(stream_base())};
  return session;
}

StreamRequest triangle_stream(std::size_t threads, std::size_t max_buffered) {
  StreamRequest req;
  req.query.pattern = Pattern::parse("0-1,1-2,2-0");
  req.query.host.num_threads = threads;
  req.stream.max_buffered = max_buffered;
  return req;
}

/// Count-only baseline: the same enumeration with no emission pipeline.
void BM_CountOnly(benchmark::State& state) {
  GraphSession& session = shared_session();
  std::uint64_t count = 0;
  for (auto _ : state) {
    QueryRequest req;
    req.pattern = Pattern::parse("0-1,1-2,2-0");
    req.host.num_threads = static_cast<std::size_t>(state.range(0));
    const QueryResult r = session.run(std::move(req));
    count = r.count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["matches"] = static_cast<double>(count);
}
BENCHMARK(BM_CountOnly)->Arg(1)->Arg(4);

/// Full drain: every embedding through sequencer + consumer. The ratio to
/// BM_CountOnly is the emission overhead.
void BM_StreamDrain(benchmark::State& state) {
  GraphSession& session = shared_session();
  std::uint64_t drained = 0;
  for (auto _ : state) {
    auto s = session.open_stream(
        triangle_stream(static_cast<std::size_t>(state.range(0)), 4096));
    Embedding e;
    drained = 0;
    while (s->next(&e)) {
      ++drained;
      benchmark::DoNotOptimize(e);
    }
  }
  state.counters["embeddings"] = static_cast<double>(drained);
  state.counters["emb_per_s"] = benchmark::Counter(
      static_cast<double>(drained), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_StreamDrain)->Arg(1)->Arg(4);

/// Throughput vs. backpressure bound: tiny buffers serialize producers on
/// the consumer, large ones decouple them.
void BM_StreamBufferSweep(benchmark::State& state) {
  GraphSession& session = shared_session();
  const auto before =
      session.metrics().histogram("stream_backpressure_ms").snapshot().sum;
  std::uint64_t drained = 0;
  for (auto _ : state) {
    auto s = session.open_stream(
        triangle_stream(4, static_cast<std::size_t>(state.range(0))));
    Embedding e;
    drained = 0;
    while (s->next(&e)) ++drained;
  }
  const auto after =
      session.metrics().histogram("stream_backpressure_ms").snapshot().sum;
  state.counters["embeddings"] = static_cast<double>(drained);
  state.counters["stall_ms_per_iter"] =
      (after - before) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_StreamBufferSweep)->Arg(1)->Arg(16)->Arg(256)->Arg(4096);

/// Top-k keeps a bounded heap instead of materializing the stream.
void BM_TopK(benchmark::State& state) {
  GraphSession& session = shared_session();
  TopKOptions opts;
  opts.k = static_cast<std::size_t>(state.range(0));
  opts.score = [](const Embedding& e) {
    double s = 0.0;
    for (VertexId v : e) s += static_cast<double>(v);
    return s;
  };
  for (auto _ : state) {
    QueryRequest req;
    req.pattern = Pattern::parse("0-1,1-2,2-0");
    const TopKResult r = session.top_k(req, opts);
    benchmark::DoNotOptimize(r.top);
  }
}
BENCHMARK(BM_TopK)->Arg(10)->Arg(1000);

}  // namespace
