// Reproduces paper Table II(b): unlabeled vertex-induced matching.
//
// cuTS only supports edge-induced matching, so (as in the paper) the
// comparison is STMatch vs Dryadic. For the cliques q8/q16/q24 vertex-
// induced equals edge-induced.
#include <cstdio>
#include <iostream>

#include "baselines/dryadic.hpp"
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "pattern/queries.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  auto args = bench::parse_args(argc, argv, /*default_scale=*/0.3);
  const std::vector<std::string> graphs = {"wiki_vote", "enron", "mico"};
  std::vector<int> queries;
  for (int q = 1; q <= num_queries(); ++q) queries.push_back(q);
  if (args.quick) queries = {1, 3, 8, 10, 16, 18, 24};

  std::printf(
      "== Table II(b): unlabeled vertex-induced matching, ms (simulated) "
      "==\ndatasets at scale %.2f\n\n",
      args.scale);

  PlanOptions popts{Induced::kVertex, true, CountMode::kEmbeddings};
  std::vector<double> vs_dryadic;
  Table table(
      {"query", "graph", "count", "Dryadic", "STMatch", "vs Dryadic"});
  for (int q : queries) {
    for (const auto& gname : graphs) {
      Graph g = make_dataset(gname, args.scale);
      auto stm_result =
          stmatch_match_pattern(g, query(q), popts, bench::engine_preset());
      auto dry = dryadic_match(g, query(q), popts);
      table.add_row({query_name(q), gname, Table::fmt_count(stm_result.count),
                     bench::ms_cell(dry.sim_ms),
                     bench::ms_cell(stm_result.stats.sim_ms),
                     bench::speedup_cell(dry.sim_ms, stm_result.stats.sim_ms)});
      vs_dryadic.push_back(dry.sim_ms / stm_result.stats.sim_ms);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf("\n");
  bench::print_speedup_summary("STMatch vs Dryadic (vertex-induced)",
                               vs_dryadic);
  return 0;
}
