// Reproduces paper Fig. 12: the work-stealing / loop-unrolling ablation.
//
// Labeled size-6 queries under four engine variants:
//   naive                     — no stealing, unroll 1
//   localsteal                — intra-block stealing only
//   local+globalsteal         — both stealing levels
//   unroll+local+globalsteal  — full system (unroll 8)
// The paper reports local stealing as the biggest win (~2x), global stealing
// helping on the larger graphs, and unrolling adding 1.1-2.6x; occupancy is
// printed alongside, as in the paper's profiles.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "pattern/queries.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  // Work stealing matters when hub subtrees are large, so this experiment
  // uses the heavy-skew proxy variants (degree cap 96; the paper's real
  // graphs have hubs of degree 10^3..10^5).
  auto args = bench::parse_args(argc, argv, /*default_scale=*/1.0);
  const std::vector<std::string> graphs = {"enron", "youtube", "mico",
                                           "livejournal"};
  std::vector<int> queries = queries_of_size(6);
  if (args.quick) queries = {9, 12, 16};

  auto variant = [](bool local, bool global, std::uint32_t unroll) {
    EngineConfig cfg = bench::engine_preset();
    // The paper's StopLevel (2); DetectLevel 2 so grinding warps revisit a
    // push-check level often enough at proxy scale (DESIGN.md §6).
    cfg.stop_level = 2;
    cfg.detect_level = 2;
    cfg.local_steal = local;
    cfg.global_steal = global;
    cfg.unroll = unroll;
    return cfg;
  };

  std::printf(
      "== Fig. 12: speedups of labeled size-6 queries over the naive engine "
      "==\n(numbers in parentheses: warp occupancy, as profiled in the "
      "paper)\n\n");
  Table table({"graph", "query", "naive ms (occ)", "localsteal",
               "local+global", "unroll+local+global"});
  std::vector<double> local_gain, global_gain, unroll_gain;
  for (const auto& gname : graphs) {
    for (int q : queries) {
      Graph g = make_skewed_dataset(gname, args.scale, args.labels);
      Pattern p = labeled_query(q, args.labels);
      auto naive =
          stmatch_match_pattern(g, p, {}, variant(false, false, 1));
      auto local = stmatch_match_pattern(g, p, {}, variant(true, false, 1));
      auto both = stmatch_match_pattern(g, p, {}, variant(true, true, 1));
      auto full = stmatch_match_pattern(g, p, {}, variant(true, true, 8));
      auto cell = [&](const MatchResult& r) {
        return bench::speedup_cell(naive.stats.sim_ms, r.stats.sim_ms) + " (" +
               Table::fmt(r.stats.occupancy, 2) + ")";
      };
      table.add_row({gname, query_name(q),
                     bench::ms_cell(naive.stats.sim_ms) + " (" +
                         Table::fmt(naive.stats.occupancy, 2) + ")",
                     cell(local), cell(both), cell(full)});
      local_gain.push_back(naive.stats.sim_ms / local.stats.sim_ms);
      global_gain.push_back(local.stats.sim_ms / both.stats.sim_ms);
      unroll_gain.push_back(both.stats.sim_ms / full.stats.sim_ms);
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf("\n");
  bench::print_speedup_summary("local stealing over naive   ", local_gain);
  bench::print_speedup_summary("global stealing on top      ", global_gain);
  bench::print_speedup_summary("loop unrolling on top       ", unroll_gain);
  return 0;
}
