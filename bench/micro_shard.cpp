// Micro-benchmarks of the sharded execution subsystem: single-shard vs
// 2/4/8-shard wall time of the cross-shard coordinator on ER and power-law
// graphs, with the partition's imbalance and cut fraction reported as
// counters. The acceptance target (EXPERIMENTS.md) is a measurable speedup
// over the single-shard host run on >= 4 shards for at least one power-law
// workload — on multi-core hosts; a 1-core container only shows the
// coordination overhead, which these benchmarks then bound.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "dist/partition.hpp"
#include "dist/sharded.hpp"
#include "graph/generators.hpp"
#include "pattern/pattern.hpp"

namespace {

using namespace stm;

const Graph& er_graph() {
  static const Graph g = make_erdos_renyi(2000, 8.0 / 1999.0, 101);
  return g;
}

const Graph& power_law_graph() {
  // Barabási–Albert skew: hub shards make load balancing matter.
  static const Graph g = make_barabasi_albert(2000, 4, 202);
  return g;
}

void run_sharded(benchmark::State& state, const Graph& g,
                 dist::PartitionStrategy strategy) {
  const auto num_shards = static_cast<std::uint32_t>(state.range(0));
  dist::PartitionConfig pcfg;
  pcfg.num_shards = num_shards;
  pcfg.strategy = strategy;
  const Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  dist::ShardedOptions opts;
  opts.local_engine = dist::LocalEngine::kHost;

  std::uint64_t count = 0;
  double imbalance = 1.0;
  double cut_fraction = 0.0;
  for (auto _ : state) {
    const dist::ShardedResult r = dist::sharded_match(g, triangle, pcfg, opts);
    benchmark::DoNotOptimize(r.count);
    count = r.count;
    imbalance = r.vertex_imbalance;
    cut_fraction = r.cut_fraction;
  }
  state.counters["triangles"] = static_cast<double>(count);
  state.counters["vertex_imbalance"] = imbalance;
  state.counters["cut_fraction"] = cut_fraction;
}

void BM_ShardedTriangles_ER_Contiguous(benchmark::State& state) {
  run_sharded(state, er_graph(), dist::PartitionStrategy::kContiguous);
}
BENCHMARK(BM_ShardedTriangles_ER_Contiguous)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ShardedTriangles_PowerLaw_Contiguous(benchmark::State& state) {
  run_sharded(state, power_law_graph(), dist::PartitionStrategy::kContiguous);
}
BENCHMARK(BM_ShardedTriangles_PowerLaw_Contiguous)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ShardedTriangles_PowerLaw_DegreeBalanced(benchmark::State& state) {
  run_sharded(state, power_law_graph(),
              dist::PartitionStrategy::kDegreeBalanced);
}
BENCHMARK(BM_ShardedTriangles_PowerLaw_DegreeBalanced)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_PartitionBuild_PowerLaw(benchmark::State& state) {
  const auto num_shards = static_cast<std::uint32_t>(state.range(0));
  dist::PartitionConfig pcfg;
  pcfg.num_shards = num_shards;
  pcfg.strategy = dist::PartitionStrategy::kDegreeBalanced;
  for (auto _ : state) {
    const dist::Partition p = dist::partition_graph(power_law_graph(), pcfg);
    benchmark::DoNotOptimize(p.shards.size());
  }
}
BENCHMARK(BM_PartitionBuild_PowerLaw)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
