// Micro-benchmarks of the conformance harness: case generation throughput,
// differential oracle cost (the per-trial price of a fuzz run, dominated by
// the brute-force reference), the metamorphic relation suite, and .repro
// serialization. These bound how many trials a nightly fuzz budget buys.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "testing/metamorphic.hpp"
#include "testing/oracle.hpp"
#include "testing/repro.hpp"
#include "testing/seed.hpp"
#include "testing/workload.hpp"

namespace {

using namespace stm;
using namespace stm::harness;

void BM_RandomCase(benchmark::State& state) {
  std::uint64_t stream = 0;
  for (auto _ : state) {
    const TestCase c = random_case(derive_seed(42, stream++));
    benchmark::DoNotOptimize(c.graph.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomCase);

void BM_OracleTrial(benchmark::State& state) {
  // Full differential trial (reference + recursive + host + simt +
  // incremental replay) on a case stream capped at the given graph size.
  WorkloadOptions opts;
  opts.max_vertices = static_cast<VertexId>(state.range(0));
  std::uint64_t stream = 0;
  std::uint64_t agreed = 0;
  for (auto _ : state) {
    const TestCase c = random_case(derive_seed(7, stream++), opts);
    agreed += run_oracle(c).agreed ? 1 : 0;
  }
  if (agreed != static_cast<std::uint64_t>(state.iterations()))
    state.SkipWithError("oracle disagreed");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OracleTrial)->Arg(24)->Arg(48)->Arg(64);

void BM_MetamorphicSuite(benchmark::State& state) {
  WorkloadOptions opts;
  opts.max_vertices = 32;
  std::uint64_t stream = 0;
  for (auto _ : state) {
    const std::uint64_t seed = derive_seed(3, stream++);
    const TestCase c = random_case(seed, opts);
    benchmark::DoNotOptimize(check_metamorphic(c, seed).checked);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MetamorphicSuite);

void BM_ReproRoundTrip(benchmark::State& state) {
  const TestCase c = random_case(11);
  for (auto _ : state) {
    const TestCase back = from_repro(to_repro(c));
    benchmark::DoNotOptimize(back.graph.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReproRoundTrip);

}  // namespace
