// Reproduces paper Fig. 11: multi-GPU scaling.
//
// Labeled and unlabeled size-6 queries (q9-q16) on the MiCo, LiveJournal and
// Orkut proxies, run on 1, 2 and 4 simulated devices by dividing the
// outermost loop iterations across devices. The paper reports near-linear
// speedups; the reproduced series prints speedup vs the single-device run.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/multi_gpu.hpp"
#include "graph/datasets.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  // Labeled runs use the heavy-skew proxies (hub subtrees large enough to
  // matter); unlabeled runs need far smaller graphs on one core.
  auto args = bench::parse_args(argc, argv, /*default_scale=*/2.0);
  const std::vector<std::string> graphs = {"mico", "livejournal", "orkut"};
  std::vector<int> queries = {9, 10, 13, 14, 16};  // size-6 subset
  if (args.full) queries = queries_of_size(6);
  if (args.quick) queries = {9, 10, 14};
  const double unlabeled_scale = args.scale * 0.15;

  // Scaling is only visible when one device is compute-saturated, so the
  // per-device shape is scaled down with the proxy workloads (12 SMs x 4
  // warps instead of the paper-shaped 82 x 8).
  EngineConfig device_cfg = bench::engine_preset();
  device_cfg.device.num_blocks = 8;
  device_cfg.device.warps_per_block = 4;

  std::printf(
      "== Fig. 11: multi-GPU scaling of q9-q16 (speedup vs 1 device) ==\n\n");
  Table table({"graph", "query", "mode", "1 GPU (ms)", "2 GPUs", "4 GPUs"});
  std::vector<double> speedup2, speedup4;
  for (const auto& gname : graphs) {
    for (int q : queries) {
      for (bool labeled : {true, false}) {
        Graph g = labeled
                      ? make_skewed_dataset(gname, args.scale, args.labels)
                      : make_dataset(gname, unlabeled_scale);
        Pattern p = labeled ? labeled_query(q, args.labels) : query(q);
        MatchingPlan plan(reorder_for_matching(p), {});
        auto one = stmatch_match_multi_gpu(g, plan, 1, device_cfg);
        auto two = stmatch_match_multi_gpu(g, plan, 2, device_cfg);
        auto four = stmatch_match_multi_gpu(g, plan, 4, device_cfg);
        table.add_row({gname, query_name(q), labeled ? "labeled" : "unlabeled",
                       bench::ms_cell(one.sim_ms),
                       bench::speedup_cell(one.sim_ms, two.sim_ms),
                       bench::speedup_cell(one.sim_ms, four.sim_ms)});
        speedup2.push_back(one.sim_ms / two.sim_ms);
        speedup4.push_back(one.sim_ms / four.sim_ms);
      }
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf("\n");
  bench::print_speedup_summary("2 GPUs", speedup2);
  bench::print_speedup_summary("4 GPUs", speedup4);
  return 0;
}
