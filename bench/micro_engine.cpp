// Micro-benchmarks of the matching engines themselves (google-benchmark,
// real wall-clock): recursive executor, host-parallel engine, and the SIMT
// simulator overhead, on small dataset proxies.
#include <benchmark/benchmark.h>

#include "core/engine.hpp"
#include "core/host_engine.hpp"
#include "core/recursive.hpp"
#include "graph/datasets.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/queries.hpp"

namespace {

using namespace stm;

const Graph& wiki_tiny() {
  static const Graph g = make_dataset("wiki_vote", 0.15);
  return g;
}

void BM_RecursiveExecutor(benchmark::State& state) {
  const Graph& g = wiki_tiny();
  const int q = static_cast<int>(state.range(0));
  MatchingPlan plan(reorder_for_matching(query(q)), {});
  std::uint64_t count = 0;
  for (auto _ : state) {
    count = recursive_count_range(g, plan, 0, g.num_vertices());
    benchmark::DoNotOptimize(count);
  }
  state.counters["matches"] = static_cast<double>(count);
}
BENCHMARK(BM_RecursiveExecutor)->Arg(3)->Arg(8)->Arg(10);

void BM_RecursiveNoCodeMotion(benchmark::State& state) {
  const Graph& g = wiki_tiny();
  PlanOptions popts;
  popts.code_motion = false;
  MatchingPlan plan(reorder_for_matching(query(static_cast<int>(state.range(0)))),
                    popts);
  for (auto _ : state) {
    auto count = recursive_count_range(g, plan, 0, g.num_vertices());
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_RecursiveNoCodeMotion)->Arg(8)->Arg(10);

void BM_HostEngine(benchmark::State& state) {
  const Graph& g = wiki_tiny();
  MatchingPlan plan(reorder_for_matching(query(10)), {});
  HostEngineConfig cfg;
  cfg.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto r = host_match(g, plan, cfg);
    benchmark::DoNotOptimize(r.count);
  }
}
BENCHMARK(BM_HostEngine)->Arg(1)->Arg(2)->Arg(4);

void BM_SimulatedEngine(benchmark::State& state) {
  // Wall cost of simulating one query end to end (scheduler + counters).
  const Graph& g = wiki_tiny();
  MatchingPlan plan(reorder_for_matching(query(10)), {});
  EngineConfig cfg;
  cfg.device.num_blocks = static_cast<std::uint32_t>(state.range(0));
  cfg.device.warps_per_block = 8;
  cfg.stop_level = 4;
  cfg.detect_level = 2;
  for (auto _ : state) {
    auto r = stmatch_match(g, plan, cfg);
    benchmark::DoNotOptimize(r.count);
  }
}
BENCHMARK(BM_SimulatedEngine)->Arg(4)->Arg(16)->Arg(82);

void BM_PlanCompilation(benchmark::State& state) {
  Pattern p = query(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    MatchingPlan plan(reorder_for_matching(p), {});
    benchmark::DoNotOptimize(plan.num_nodes());
  }
}
BENCHMARK(BM_PlanCompilation)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
