// Reproduces paper Table I: dataset statistics.
//
// Columns: vertices, edges, max degree, median degree, and the fraction of
// vertices whose degree exceeds the candidate-slab capacity (the paper's
// "Deg. > 4096" column at full scale; the proxies report "deg > 32").
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "graph/datasets.hpp"
#include "graph/degree_stats.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  auto args = bench::parse_args(argc, argv);

  std::printf("== Table I: graph datasets (synthetic proxies, scale %.2f) ==\n",
              args.scale);
  Table table({"Graph", "# nodes", "# edges", "Max deg.", "Med deg.",
               "Deg. > cap"});
  const EdgeId cap = dataset_report_cap();
  for (const auto& name : dataset_names()) {
    Graph g = make_dataset(name, args.scale);
    auto s = compute_degree_stats(g, cap);
    table.add_row({name, Table::fmt_count(s.num_vertices),
                   Table::fmt_count(s.num_edges),
                   Table::fmt_count(s.max_degree),
                   Table::fmt(s.median_degree, 1),
                   Table::fmt(100.0 * s.frac_above_cap, 2) + "%"});
  }
  table.print(std::cout);
  std::printf(
      "\nPaper claim preserved: median degrees far below the warp width of "
      "32,\nheavy-tailed maxima, and the paper's dataset size ordering.\n");
  return 0;
}
