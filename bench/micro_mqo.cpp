// Micro-benchmarks of the standing-query index (DESIGN.md §16): batched
// indexed-delta evaluation vs. the per-pattern loop, and registration
// throughput. The acceptance target is sub-linear indexed-delta cost growth
// from 10k to 100k standing registrations in the duplicate-heavy regime
// (many users registering isomorphic alerts): the shared walk's cost is a
// function of the distinct canonical groups, not the registration count.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "mqo/evaluator.hpp"
#include "mqo/pattern_index.hpp"
#include "pattern/canonical.hpp"
#include "pattern/pattern.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace stm;

const Graph& mqo_base() {
  static const Graph g = make_barabasi_albert(2000, 4, 99);
  return g;
}

/// The first `count` connected patterns on 3..6 vertices, distinct up to
/// isomorphism, in a deterministic edge-subset order. The pool the
/// duplicate-heavy registration mixes draw from.
std::vector<Pattern> distinct_patterns(std::size_t count) {
  std::vector<Pattern> out;
  std::set<std::string> seen;
  for (std::size_t n = 3; n <= 6 && out.size() < count; ++n) {
    std::vector<std::pair<int, int>> all;
    for (int u = 0; u < static_cast<int>(n); ++u)
      for (int v = u + 1; v < static_cast<int>(n); ++v) all.emplace_back(u, v);
    const std::uint32_t masks = 1u << all.size();
    for (std::uint32_t m = 0; m < masks && out.size() < count; ++m) {
      std::vector<std::pair<int, int>> edges;
      for (std::size_t i = 0; i < all.size(); ++i)
        if ((m >> i) & 1) edges.push_back(all[i]);
      if (edges.size() + 1 < n) continue;  // can't be connected
      Pattern p(n, edges);
      if (!p.is_connected()) continue;
      if (!seen.insert(canonical_form(p)).second) continue;
      out.push_back(std::move(p));
    }
  }
  return out;
}

UpdateBatch random_batch(const GraphSnapshot& snap, Rng& rng, int num_edges) {
  const VertexId n = snap.num_vertices();
  UpdateBatch batch;
  for (int i = 0; i < num_edges; ++i) {
    const auto u = static_cast<VertexId>(rng() % n);
    const auto v = static_cast<VertexId>(rng() % n);
    if (u == v) continue;
    if (snap.has_edge(u, v)) {
      batch.deletions.emplace_back(u, v);
    } else {
      batch.insertions.emplace_back(u, v);
    }
  }
  return batch;
}

/// One shared walk per batch serving every registration. Args: {standing
/// registrations, distinct canonical shapes}. Growing registrations 10x at
/// a fixed shape pool must leave `walk_ms` flat (sub-linear total cost);
/// growing the pool grows the trie — but slower than plan_positions, which
/// is what `shared_prefix_ratio` reports.
void BM_IndexedDelta(benchmark::State& state) {
  const auto num_regs = static_cast<std::size_t>(state.range(0));
  const auto num_shapes = static_cast<std::size_t>(state.range(1));
  const std::vector<Pattern> shapes = distinct_patterns(num_shapes);

  mqo::PatternIndex index;
  for (std::size_t i = 0; i < num_regs; ++i)
    index.add(i + 1, shapes[i % shapes.size()], PlanOptions{},
              /*wants_embeddings=*/false);
  const mqo::MultiQueryEvaluator eval(index);

  MutableGraph g(mqo_base());
  Rng rng(5);
  double walk_ms = 0.0;
  double project_ms = 0.0;
  std::uint64_t node_visits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto from = g.snapshot();
    ApplyResult applied = g.apply(random_batch(*from, rng, 16));
    state.ResumeTiming();

    Timer walk_timer;
    const mqo::EvalResult res = eval.evaluate(from, applied.applied);
    walk_ms += walk_timer.elapsed_ms();
    node_visits += res.node_visits;

    // Fan the group deltas back out to every registration (count-only
    // subscribers): the per-query tail the session pays after the walk.
    Timer project_timer;
    std::int64_t total = 0;
    for (std::size_t i = 0; i < num_regs; ++i)
      total += index.project(i + 1, res).delta;
    project_ms += project_timer.elapsed_ms();
    benchmark::DoNotOptimize(total);
  }
  const auto iters = static_cast<double>(state.iterations());
  const mqo::IndexStats st = index.stats();
  state.counters["walk_ms"] = walk_ms / iters;
  state.counters["project_ms"] = project_ms / iters;
  state.counters["node_visits"] = static_cast<double>(node_visits) / iters;
  state.counters["groups"] = static_cast<double>(st.groups);
  state.counters["trie_nodes"] = static_cast<double>(st.trie.nodes);
  state.counters["shared_prefix_ratio"] = st.trie.shared_prefix_ratio;
}
BENCHMARK(BM_IndexedDelta)
    ->Args({10000, 16})    // duplicate-heavy, 10k standing queries
    ->Args({100000, 16})   // 10x the queries, same shapes: walk_ms flat
    ->Args({100000, 64});  // diverse mix: trie grows, sharing persists

/// What the indexed walk replaces: one IncrementalMatcher per standing
/// query, each seeding its own anchored runs per delta edge. Linear in the
/// registration count by construction — benchmarked at small counts only
/// (10k would take minutes per batch).
void BM_PerPatternDelta(benchmark::State& state) {
  const auto num_regs = static_cast<std::size_t>(state.range(0));
  const std::vector<Pattern> shapes = distinct_patterns(16);
  std::vector<IncrementalMatcher> matchers;
  matchers.reserve(num_regs);
  for (std::size_t i = 0; i < num_regs; ++i)
    matchers.emplace_back(shapes[i % shapes.size()]);

  MutableGraph g(mqo_base());
  Rng rng(6);
  for (auto _ : state) {
    state.PauseTiming();
    auto from = g.snapshot();
    ApplyResult applied = g.apply(random_batch(*from, rng, 16));
    state.ResumeTiming();
    std::int64_t total = 0;
    for (const IncrementalMatcher& m : matchers)
      total += m.count_delta(from, applied.applied).delta;
    benchmark::DoNotOptimize(total);
  }
  state.counters["queries"] = static_cast<double>(num_regs);
}
BENCHMARK(BM_PerPatternDelta)->Arg(8)->Arg(64)->Arg(512);

/// Registration throughput in the duplicate-heavy regime: after the first
/// member of each group pays for its trie paths, a duplicate registration
/// touches only the map and the refcount.
void BM_Register(benchmark::State& state) {
  const std::vector<Pattern> shapes = distinct_patterns(16);
  mqo::PatternIndex index;
  std::uint64_t id = 0;
  for (auto _ : state) {
    ++id;
    index.add(id, shapes[id % shapes.size()], PlanOptions{}, false);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["trie_nodes"] =
      static_cast<double>(index.stats().trie.nodes);
}
BENCHMARK(BM_Register);

/// Steady-state churn: one registration enters, one leaves. Group slots and
/// trie paths are recycled, so the index must not grow.
void BM_RegisterDeregisterChurn(benchmark::State& state) {
  const std::vector<Pattern> shapes = distinct_patterns(16);
  mqo::PatternIndex index;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    ++id;
    index.add(id, shapes[id % shapes.size()], PlanOptions{}, false);
  }
  std::uint64_t oldest = 1;
  for (auto _ : state) {
    ++id;
    index.add(id, shapes[id % shapes.size()], PlanOptions{}, false);
    index.remove(oldest++);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
  state.counters["registrations"] = static_cast<double>(index.size());
  state.counters["group_slots"] =
      static_cast<double>(index.num_group_slots());
}
BENCHMARK(BM_RegisterDeregisterChurn);

}  // namespace
