// Micro-benchmarks of the durability subsystem: apply-path throughput with
// the WAL off / on (buffered) / on (fsync), checkpoint install cost, and
// recovery replay speed. The WAL-off vs. WAL-on buffered gap is the
// write-ahead overhead itself (encode + crc + write); fsync adds the
// device's flush latency per batch. Baselines recorded in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>

#include "dynamic/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "persist/wal.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace stm;

namespace fs = std::filesystem;

std::string scratch_dir() {
  static std::atomic<std::uint64_t> counter{0};
  const fs::path p =
      fs::temp_directory_path() /
      ("stmatch-micro-persist-" + std::to_string(counter.fetch_add(1)));
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

const Graph& bench_base() {
  static const Graph g = make_barabasi_albert(2000, 6, 77);
  return g;
}

UpdateBatch random_batch(const GraphSnapshot& snap, Rng& rng, int num_edges) {
  const VertexId n = snap.num_vertices();
  UpdateBatch batch;
  for (int i = 0; i < num_edges; ++i) {
    const auto u = static_cast<VertexId>(rng() % n);
    const auto v = static_cast<VertexId>(rng() % n);
    if (u == v) continue;
    if (snap.has_edge(u, v)) {
      batch.deletions.emplace_back(u, v);
    } else {
      batch.insertions.emplace_back(u, v);
    }
  }
  return batch;
}

/// Apply throughput: state.range(0) = edges per batch, range(1) selects
/// 0 = no persistence, 1 = WAL buffered, 2 = WAL + fsync.
void BM_ApplyWithWal(benchmark::State& state) {
  const int batch_edges = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  SessionConfig cfg;
  std::string dir;
  if (mode > 0) {
    dir = scratch_dir();
    cfg.persistence.dir = dir;
    cfg.persistence.fsync = mode == 2;
  }
  GraphSession session(bench_base(), cfg);
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    UpdateBatch batch =
        random_batch(*session.snapshot(), rng, batch_edges);
    state.ResumeTiming();
    const UpdateOutcome out = session.apply_updates(std::move(batch));
    benchmark::DoNotOptimize(out.epoch);
  }
  if (mode > 0) {
    state.counters["wal_bytes"] = static_cast<double>(
        session.metrics().counter("wal_appended_bytes_total").value());
  }
  state.SetLabel(mode == 0 ? "wal_off" : (mode == 1 ? "wal_buffered"
                                                    : "wal_fsync"));
  if (!dir.empty()) fs::remove_all(dir);
}
BENCHMARK(BM_ApplyWithWal)
    ->ArgsProduct({{10, 100}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

/// Checkpoint install: compacted-CSR serialization + crc + atomic rename.
void BM_Checkpoint(benchmark::State& state) {
  const std::string dir = scratch_dir();
  SessionConfig cfg;
  cfg.persistence.dir = dir;
  cfg.persistence.fsync = false;
  GraphSession session(bench_base(), cfg);
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    session.apply_updates(random_batch(*session.snapshot(), rng, 50));
    state.ResumeTiming();
    benchmark::DoNotOptimize(session.checkpoint());
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_Checkpoint)->Unit(benchmark::kMillisecond);

/// Recovery: construction cost against a directory holding range(0)
/// WAL batches past the checkpoint.
void BM_RecoveryReplay(benchmark::State& state) {
  const int batches = static_cast<int>(state.range(0));
  const std::string dir = scratch_dir();
  SessionConfig cfg;
  cfg.persistence.dir = dir;
  cfg.persistence.fsync = false;
  {
    GraphSession session(bench_base(), cfg);
    Rng rng(7);
    for (int i = 0; i < batches; ++i)
      session.apply_updates(random_batch(*session.snapshot(), rng, 50));
  }
  double recovery_ms = 0.0;
  for (auto _ : state) {
    auto session = GraphSession::restore(cfg);
    benchmark::DoNotOptimize(session->epoch());
    recovery_ms = session->recovery_report().recovery_ms;
  }
  state.counters["replayed"] = static_cast<double>(batches);
  state.counters["recovery_ms"] = recovery_ms;
  fs::remove_all(dir);
}
BENCHMARK(BM_RecoveryReplay)->Arg(0)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Raw WAL append cost (no session, no graph work): the floor of the
/// write-ahead overhead per record.
void BM_WalAppendRaw(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const std::string dir = scratch_dir();
  persist::WalWriter w((fs::path(dir) / "wal.stmwal").string(), 1,
                       /*fsync=*/false, 0, nullptr, 1);
  DeltaEdges d;
  for (int i = 0; i < edges; ++i)
    d.inserted.emplace_back(static_cast<VertexId>(i),
                            static_cast<VertexId>(i + 1));
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.append_update(++epoch, d).bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(w.appended_bytes()));
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppendRaw)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

}  // namespace
