// Shared harness for the paper-table benchmark binaries.
//
// Every binary prints the same rows/series the corresponding paper table or
// figure reports, on the scaled-down dataset proxies (DESIGN.md §2).
// Simulated times are NOT comparable to the paper's RTX 3090 numbers; the
// reproduced claims are orderings and rough factors (EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace stm::bench {

/// Engine preset used by all benchmarks: an 82-SM device like the paper's
/// RTX 3090 with 8 resident warps per block. StopLevel/DetectLevel are
/// deepened from the paper's 2/1 to 4/2 because the proxy graphs' candidate
/// sets are ~100x smaller than the real datasets', so a proportionally
/// deeper split point is needed to keep steals worthwhile (DESIGN.md §6).
inline EngineConfig engine_preset() {
  EngineConfig cfg;
  cfg.device.num_blocks = 82;
  cfg.device.warps_per_block = 8;
  cfg.chunk_size = 2;
  cfg.stop_level = 4;
  cfg.detect_level = 2;
  cfg.unroll = 8;
  return cfg;
}

/// Standard benchmark options.
struct BenchArgs {
  double scale = 1.0;          // dataset scale multiplier
  std::size_t labels = 2;      // labels for labeled experiments
  bool quick = false;          // reduced grid for smoke runs
  bool full = false;           // widest grid
};

inline BenchArgs parse_args(int argc, char** argv,
                            double default_scale = 1.0) {
  Options opts(argc, argv);
  opts.allow_only({"scale", "labels", "quick", "full"});
  BenchArgs args;
  args.scale = opts.get_double("scale", default_scale);
  args.labels = static_cast<std::size_t>(opts.get_int("labels", 2));
  args.quick = opts.get_bool("quick", false);
  args.full = opts.get_bool("full", false);
  return args;
}

/// Milliseconds cell, paper-style: '×' = out of memory.
inline std::string ms_cell(double ms, bool oom = false) {
  if (oom) return "x (OOM)";
  return Table::fmt(ms, ms < 10 ? 3 : 1);
}

inline std::string speedup_cell(double base_ms, double ours_ms) {
  if (ours_ms <= 0) return "-";
  return Table::fmt(base_ms / ours_ms, 1) + "x";
}

/// Prints a geometric-mean summary line of collected speedups.
inline void print_speedup_summary(const std::string& label,
                                  const std::vector<double>& speedups) {
  if (speedups.empty()) return;
  std::vector<double> positive;
  for (double s : speedups)
    if (s > 0) positive.push_back(s);
  if (positive.empty()) return;
  auto mm = summarize(positive);
  std::printf("%s: geomean %.1fx, min %.1fx, max %.1fx (n=%zu)\n",
              label.c_str(), geometric_mean(positive), mm.min, mm.max,
              positive.size());
}

}  // namespace stm::bench
