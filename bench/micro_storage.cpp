// Micro-benchmarks of the storage subsystem (google-benchmark).
//
// Real wall-clock measurements of encode cost, decode-on-read throughput,
// and host-engine query latency over every backend, plus the footprint
// sweep EXPERIMENTS.md records: on a power-law dataset proxy at scale >= 10
// the spill tier must keep >= 4x less resident than the raw CSR while the
// engines still return bit-identical counts (the differential harness
// checks the counts; this binary measures the footprint and the price).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>

#include "core/host_engine.hpp"
#include "graph/datasets.hpp"
#include "pattern/matching_order.hpp"
#include "pattern/pattern.hpp"
#include "pattern/plan.hpp"
#include "storage/store.hpp"

namespace {

using namespace stm;

// The proxy the footprint acceptance is measured on: orkut is the densest
// Barabási–Albert proxy (mean degree ~12 plus planted cliques), the regime
// where delta/varint lists win and the spill index amortizes best.
const char* kProxy = "orkut";

storage::StoragePolicy policy_for(storage::Backend b, std::uint64_t raw_bytes) {
  storage::StoragePolicy p;
  p.backend = b;
  if (b == storage::Backend::kSpill) {
    // A budget far below the raw graph: the out-of-core operating point.
    p.memory_budget_bytes = std::max<std::uint64_t>(4096, raw_bytes / 64);
    p.page_size = 1 << 14;
  }
  return p;
}

const Graph& proxy_graph(double scale) {
  static const Graph small = make_dataset(kProxy, 1.0);
  static const Graph large = make_dataset(kProxy, 10.0);
  return scale < 10.0 ? small : large;
}

void BM_StoreBuild(benchmark::State& state, storage::Backend backend) {
  const Graph& g = proxy_graph(1.0);
  for (auto _ : state) {
    auto store = storage::GraphStore::build(Graph(g),
                                            policy_for(backend, g.memory_bytes()));
    benchmark::DoNotOptimize(store->stats().encoded_bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_adjacency_entries()));
}
BENCHMARK_CAPTURE(BM_StoreBuild, compressed, storage::Backend::kCompressed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_StoreBuild, bitset, storage::Backend::kCompressedBitset)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_StoreBuild, spill, storage::Backend::kSpill)
    ->Unit(benchmark::kMillisecond);

// Full adjacency scan with the decode cache trimmed every iteration: the
// cold decode path (varint walk, and for spill the page faults too).
void BM_DecodeScan(benchmark::State& state, storage::Backend backend) {
  const Graph& g = proxy_graph(1.0);
  const auto store =
      storage::GraphStore::build(Graph(g), policy_for(backend, g.memory_bytes()));
  std::uint64_t sum = 0;
  for (auto _ : state) {
    {
      const auto lease = store->lease();
      const GraphView view = store->view();
      for (VertexId v = 0; v < view.num_vertices(); ++v)
        for (VertexId u : view.neighbors(v)) sum += u;
    }
    store->trim_decoded();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_adjacency_entries()));
  const storage::StorageStats st = store->stats();
  state.counters["page_faults"] = static_cast<double>(st.page_faults);
  state.counters["decode_ops"] = static_cast<double>(st.decode_ops);
}
BENCHMARK_CAPTURE(BM_DecodeScan, uncompressed, storage::Backend::kUncompressed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DecodeScan, compressed, storage::Backend::kCompressed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DecodeScan, bitset, storage::Backend::kCompressedBitset)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DecodeScan, spill, storage::Backend::kSpill)
    ->Unit(benchmark::kMillisecond);

// Host-engine triangle count through the store's view: what a query pays
// for decode-on-intersect once the per-run cache warms up (the cache
// persists across iterations here, as it does across one engine run).
void BM_TriangleHost(benchmark::State& state, storage::Backend backend) {
  const Graph& g = proxy_graph(1.0);
  const auto store =
      storage::GraphStore::build(Graph(g), policy_for(backend, g.memory_bytes()));
  const Pattern triangle(3, {{0, 1}, {1, 2}, {0, 2}});
  const MatchingPlan plan(reorder_for_matching(triangle), {});
  HostEngineConfig cfg;
  cfg.num_threads = 1;
  const auto lease = store->lease();
  std::uint64_t count = 0;
  for (auto _ : state) {
    count = host_match(store->view(), plan, cfg).count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["triangles"] = static_cast<double>(count);
}
BENCHMARK_CAPTURE(BM_TriangleHost, uncompressed,
                  storage::Backend::kUncompressed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TriangleHost, compressed, storage::Backend::kCompressed)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TriangleHost, bitset, storage::Backend::kCompressedBitset)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TriangleHost, spill, storage::Backend::kSpill)
    ->Unit(benchmark::kMillisecond);

// Footprint sweep: encode the proxy at the given scale and report what each
// backend keeps resident. footprint_reduction = raw CSR bytes / resident
// bytes; the EXPERIMENTS.md acceptance reads the spill row at scale 10.
void BM_Footprint(benchmark::State& state, storage::Backend backend) {
  const double scale = static_cast<double>(state.range(0));
  const Graph& g = proxy_graph(scale);
  storage::StorageStats st;
  for (auto _ : state) {
    const auto store = storage::GraphStore::build(
        Graph(g), policy_for(backend, g.memory_bytes()));
    st = store->stats();
    benchmark::DoNotOptimize(st.resident_bytes);
  }
  state.counters["raw_bytes"] = static_cast<double>(st.raw_bytes);
  state.counters["resident_bytes"] = static_cast<double>(st.resident_bytes);
  state.counters["encoded_bytes"] = static_cast<double>(st.encoded_bytes);
  state.counters["compression_ratio"] = st.compression_ratio;
  state.counters["footprint_reduction"] =
      st.resident_bytes > 0 ? static_cast<double>(st.raw_bytes) /
                                  static_cast<double>(st.resident_bytes)
                            : 0.0;
}
BENCHMARK_CAPTURE(BM_Footprint, compressed, storage::Backend::kCompressed)
    ->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Footprint, bitset, storage::Backend::kCompressedBitset)
    ->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Footprint, spill, storage::Backend::kSpill)
    ->Arg(1)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace
