// Reproduces paper Fig. 13: intra-warp thread utilization vs unroll size.
//
// Sparse real-world graphs have median degrees far below the warp width, so
// without unrolling most lanes idle during set operations; fusing the ops of
// several unrolled iterations (Fig. 8) fills the warp. The series prints the
// lane-utilization counter of the combined set operations for unroll sizes
// 1, 2, 4 and 8.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "graph/datasets.hpp"
#include "pattern/queries.hpp"

int main(int argc, char** argv) {
  using namespace stm;
  auto args = bench::parse_args(argc, argv, /*default_scale=*/0.35);
  const std::vector<std::string> graphs = {"wiki_vote", "enron", "mico"};
  std::vector<int> queries = {4, 9, 12, 17};
  if (args.quick) queries = {9};

  std::printf(
      "== Fig. 13: warp thread utilization with different unroll sizes ==\n"
      "(fraction of lane slots doing useful work in set operations)\n\n");
  Table table({"graph", "query", "unroll 1", "unroll 2", "unroll 4",
               "unroll 8"});
  for (const auto& gname : graphs) {
    for (int q : queries) {
      Graph g = make_dataset(gname, args.scale);
      std::vector<std::string> row{gname, query_name(q)};
      double prev = 0.0;
      bool monotone = true;
      for (std::uint32_t unroll : {1u, 2u, 4u, 8u}) {
        EngineConfig cfg = bench::engine_preset();
        cfg.unroll = unroll;
        auto result = stmatch_match_pattern(g, query(q), {}, cfg);
        const double util = result.stats.set_ops.utilization();
        monotone &= (util >= prev - 0.05);
        prev = util;
        row.push_back(Table::fmt(100.0 * util, 1) + "%");
      }
      if (!monotone) row.back() += " (!)";
      table.add_row(std::move(row));
    }
    table.add_separator();
  }
  table.print(std::cout);
  std::printf(
      "\nPaper claim: larger unroll sizes give higher thread utilization.\n");
  return 0;
}
